// Package fplan assembles the full floorplanning pipeline the paper's
// experiments run: a simulated-annealing search over normalized Polish
// expressions whose cost function is α·Area + β·Wirelength +
// γ·Congestion (§5), with pins located by the intersection-to-
// intersection method, multi-pin nets decomposed by Manhattan MST, and
// the congestion term supplied by a pluggable estimator (the
// fixed-size-grid model or the Irregular-Grid model).
package fplan

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"irgrid/internal/anneal"
	"irgrid/internal/buildinfo"
	"irgrid/internal/geom"
	"irgrid/internal/mst"
	"irgrid/internal/netlist"
	"irgrid/internal/obs"
	"irgrid/internal/pins"
	"irgrid/internal/slicing"
	"irgrid/internal/wl"
)

// Estimator scores the congestion of a floorplan from its decomposed
// 2-pin nets; both congestion models implement it.
type Estimator interface {
	// Score returns the chip-level congestion cost (the average of the
	// top-10% most congested grids/area units).
	Score(chip geom.Rect, nets []netlist.TwoPin) float64
	// Name identifies the model in reports.
	Name() string
}

// Weights are the cost-function coefficients.
type Weights struct {
	Alpha float64 // area
	Beta  float64 // wirelength
	Gamma float64 // congestion
}

// Config parameterizes a floorplanning run.
type Config struct {
	Weights
	// Estimator supplies the congestion term; it may be nil when
	// Gamma == 0.
	Estimator Estimator
	// Pitch is the base routing-grid pitch in µm used to snap pins to
	// grid intersections.
	Pitch float64
	// AllowRotate permits 90° module rotation (default used by the
	// experiments: true).
	AllowRotate bool
	// Anneal configures the SA schedule; its Seed makes runs
	// reproducible.
	Anneal anneal.Config
	// NormSamples is the number of random perturbations used to
	// normalize the cost terms (default 20).
	NormSamples int
	// Wire selects the wirelength model for the cost term (default
	// wl.ModelMST, the paper's choice). Congestion estimation always
	// uses the MST-decomposed 2-pin nets regardless.
	Wire wl.Model
	// Representation selects the floorplan encoding the annealer
	// searches: ReprSlicing (default, the paper's) or ReprSeqPair.
	Representation string
	// Workers is the parallelism of the congestion estimator's
	// evaluation engine, forwarded to estimators that support it:
	// 0 uses GOMAXPROCS, 1 forces sequential evaluation. Estimator
	// results are bit-identical for every setting.
	Workers int
	// FullEval disables incremental congestion evaluation. By default,
	// when the estimator supports the NewMoveScorer hook (the IR-grid
	// model does), each SA move's congestion is scored by a delta engine
	// that reuses the previous move's evaluation state and rolls back on
	// rejection; the scores are bit-identical to from-scratch
	// evaluation, so FullEval changes throughput only, never results.
	FullEval bool
	// Obs, when non-nil, receives live metrics from every layer of the
	// run: fplan evaluation counters and cost-component gauges, the
	// annealer's move/temperature instruments, and — for estimators that
	// support the WithObserver hook — the evaluation engine's stage
	// timings and memo counters. Telemetry only observes values already
	// computed; instrumented runs are bit-identical to plain ones.
	Obs *obs.Registry
	// Trace, when non-nil, receives the JSONL run trace: run_start,
	// calibration, one temp + solution event pair per temperature step,
	// a spans event when Spans is also set, and run_end (carrying a
	// metrics snapshot when Obs is also set).
	Trace *obs.Tracer
	// Spans, when non-nil, collects the run's hierarchical timing tree
	// (setup, run/anneal/{calibrate,temp,checkpoint}, run/finalize,
	// plus the estimator's evaluate/move stages for estimators with
	// the WithSpans hook). Spans only time work already performed;
	// span-enabled runs are bit-identical.
	Spans *obs.Spans
	// Recorder, when non-nil, is the run's black-box flight recorder:
	// the annealer feeds it move/temp/checkpoint events, hooked
	// estimators feed it eval and shard-panic events, and on
	// cancellation/deadline (or any run error) Run dumps a postmortem
	// to PostmortemPath.
	Recorder *obs.Recorder
	// Status, when non-nil, receives the live run-status feed served
	// by the /debug/run endpoint.
	Status *obs.Status
	// PostmortemPath, when set together with Recorder, arms the
	// recorder: faults (shard panics, cancellation, SIGQUIT handlers
	// in the CLIs) dump a postmortem JSON file there.
	PostmortemPath string
	// CheckpointEvery, together with Checkpoint, writes a resumable
	// snapshot after every CheckpointEvery completed temperature steps
	// (and once more if the run is canceled).
	CheckpointEvery int
	// Checkpoint receives boundary snapshots. A sink error never aborts
	// the run; it is counted in Stats.CheckpointErrors.
	Checkpoint func(*Snapshot) error
	// Resume, when non-nil, continues a previous run from the snapshot
	// instead of starting fresh. The snapshot's config digest must match
	// this Runner's (ErrSnapshotMismatch otherwise); MaxTemps may
	// differ, so a resumed run can extend the original schedule.
	Resume *Snapshot
}

// Solution is a fully evaluated floorplan.
type Solution struct {
	Expr       slicing.Expr
	Placement  *netlist.Placement
	Nets       []netlist.TwoPin // MST-decomposed 2-pin nets, pins snapped
	Area       float64          // chip bounding-box area, µm²
	Wirelength float64          // total Manhattan wirelength, µm
	Congestion float64          // estimator score (0 when no estimator)
	Cost       float64          // normalized weighted cost
}

// moveScorer is the incremental-evaluation contract an estimator's
// NewMoveScorer hook returns: Score commits (chip, nets) as its cached
// state and must be bit-identical to the estimator's own Score on the
// same input; Rollback restores the cache to the state before the last
// Score (one level deep).
type moveScorer interface {
	Score(chip geom.Rect, nets []netlist.TwoPin) float64
	Rollback()
}

// Runner evaluates Polish expressions for one circuit under one config
// and drives the annealer. A Runner is not safe for concurrent use.
type Runner struct {
	Circuit *netlist.Circuit
	Cfg     Config

	packer                      *slicing.Packer
	normArea, normWire, normCgt float64
	pinScratch                  []geom.Pt
	moveEst                     moveScorer   // nil → full per-move evaluation
	instr                       *runnerInstr // nil when Cfg.Obs is nil
	digest                      string       // configDigest, bound into snapshots
}

// runnerInstr holds the Runner's resolved registry instruments: the
// per-evaluation cost-component breakdown and move throughput.
type runnerInstr struct {
	evals              *obs.Counter // fplan_evals_total
	area, wire, cgt    *obs.Gauge   // raw terms of the last evaluation
	normArea, normWire *obs.Gauge   // calibration constants
	normCgt, cost      *obs.Gauge
	evalsPerSec        *obs.Gauge
	costH              *obs.Histogram
}

func newRunnerInstr(reg *obs.Registry) *runnerInstr {
	return &runnerInstr{
		evals:       reg.Counter("fplan_evals_total"),
		area:        reg.Gauge("fplan_area"),
		wire:        reg.Gauge("fplan_wirelength"),
		cgt:         reg.Gauge("fplan_congestion"),
		normArea:    reg.Gauge("fplan_norm_area"),
		normWire:    reg.Gauge("fplan_norm_wirelength"),
		normCgt:     reg.Gauge("fplan_norm_congestion"),
		cost:        reg.Gauge("fplan_cost"),
		evalsPerSec: reg.Gauge("fplan_evals_per_second"),
		costH: reg.Histogram("fplan_cost_hist",
			[]float64{0.25, 0.5, 0.75, 1, 1.5, 2, 3, 5, 10}),
	}
}

// New validates the inputs and prepares a Runner.
func New(c *netlist.Circuit, cfg Config) (*Runner, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if cfg.Pitch <= 0 {
		return nil, fmt.Errorf("fplan: pitch must be positive, got %g", cfg.Pitch)
	}
	if cfg.Gamma != 0 && cfg.Estimator == nil {
		return nil, fmt.Errorf("fplan: Gamma=%g requires an Estimator", cfg.Gamma)
	}
	// Forward the Workers knob to estimators that support parallel
	// evaluation. The interface is structural so fplan needs no
	// dependency on any concrete estimator package.
	if cfg.Workers != 0 && cfg.Estimator != nil {
		if p, ok := cfg.Estimator.(interface{ WithWorkers(int) any }); ok {
			if est, ok := p.WithWorkers(cfg.Workers).(Estimator); ok {
				cfg.Estimator = est
			}
		}
	}
	// Likewise forward the metrics registry to estimators that expose
	// engine-level instrumentation.
	if cfg.Obs != nil && cfg.Estimator != nil {
		if p, ok := cfg.Estimator.(interface{ WithObserver(*obs.Registry) any }); ok {
			if est, ok := p.WithObserver(cfg.Obs).(Estimator); ok {
				cfg.Estimator = est
			}
		}
	}
	// And the span tracker / flight recorder, for estimators exposing
	// the deep-observability hooks (resolved before NewMoveScorer so
	// the delta engine inherits them).
	if cfg.Spans != nil && cfg.Estimator != nil {
		if p, ok := cfg.Estimator.(interface{ WithSpans(*obs.Spans) any }); ok {
			if est, ok := p.WithSpans(cfg.Spans).(Estimator); ok {
				cfg.Estimator = est
			}
		}
	}
	if cfg.Recorder != nil && cfg.Estimator != nil {
		if p, ok := cfg.Estimator.(interface{ WithRecorder(*obs.Recorder) any }); ok {
			if est, ok := p.WithRecorder(cfg.Recorder).(Estimator); ok {
				cfg.Estimator = est
			}
		}
	}
	r := &Runner{
		Circuit: c,
		Cfg:     cfg,
		packer:  slicing.NewPacker(c.Modules, cfg.AllowRotate),
	}
	// Incremental move scoring: estimators exposing the NewMoveScorer
	// hook score successive SA states by delta evaluation. Resolved
	// after the Workers/Obs forwarding so the scorer inherits the final
	// estimator configuration. Scores are bit-identical to full
	// evaluation, so the opt-out (FullEval) trades only throughput.
	if !cfg.FullEval && cfg.Gamma != 0 && cfg.Estimator != nil {
		if h, ok := cfg.Estimator.(interface{ NewMoveScorer() any }); ok {
			if ms, ok := h.NewMoveScorer().(moveScorer); ok {
				r.moveEst = ms
			}
		}
	}
	if cfg.Obs != nil {
		r.instr = newRunnerInstr(cfg.Obs)
	}
	sp := cfg.Spans.Start("setup")
	if _, err := r.initialLayout(); err != nil {
		sp.End()
		return nil, err
	}
	r.digest = r.configDigest()
	r.calibrate()
	sp.End()
	if in := r.instr; in != nil {
		in.normArea.Set(r.normArea)
		in.normWire.Set(r.normWire)
		in.normCgt.Set(r.normCgt)
	}
	// Arm the flight recorder now that the run identity is known; an
	// armed recorder dumps a postmortem on faults from here on.
	if cfg.Recorder != nil && cfg.PostmortemPath != "" {
		cfg.Recorder.Arm(cfg.PostmortemPath, obs.PostmortemInfo{
			Version:      buildinfo.Version(),
			ConfigDigest: r.digest,
			Circuit:      c.Name,
			Model:        r.estimatorName(),
			Seed:         cfg.Anneal.Seed,
		}, cfg.Obs, cfg.Spans, cfg.Status)
	}
	return r, nil
}

// calibrate estimates normalization constants for the cost terms by
// sampling random perturbations of the initial expression, so that the
// weighted terms are commensurate regardless of circuit scale.
func (r *Runner) calibrate() {
	n := r.Cfg.NormSamples
	if n <= 0 {
		n = 20
	}
	rng := rand.New(rand.NewSource(r.Cfg.Anneal.Seed + 1))
	l, _ := r.initialLayout() // representation validated in New
	var sa, sw, sc float64
	for i := 0; i < n; i++ {
		s := r.evaluateLayout(l)
		sa += s.Area
		sw += s.Wirelength
		sc += s.Congestion
		l = l.neighbor(rng)
	}
	r.normArea = positive(sa / float64(n))
	r.normWire = positive(sw / float64(n))
	r.normCgt = positive(sc / float64(n))
}

func positive(v float64) float64 {
	if v <= 0 {
		return 1
	}
	return v
}

// evaluate packs a slicing expression and computes all cost terms.
func (r *Runner) evaluate(e slicing.Expr) *Solution {
	return r.evaluateLayout(slicingLayout{e: e, p: r.packer})
}

// evaluateLayout packs any layout and computes all cost terms.
func (r *Runner) evaluateLayout(l layout) *Solution {
	pl, err := l.pack()
	if err != nil {
		// Layouts are only produced by validated moves; a failure here
		// is a programming error.
		panic(err)
	}
	chip := pl.Chip
	snap := pins.New(chip, r.Cfg.Pitch)
	var nets []netlist.TwoPin
	var wire float64
	pts := r.pinScratch[:0]
	for _, n := range r.Circuit.Nets {
		start := len(pts)
		for _, p := range n.Pins {
			pts = append(pts, snap.SnapClamped(pl.PinPosition(p), chip))
		}
		netPins := pts[start:]
		wire += r.Cfg.Wire.Eval(netPins)
		for _, edge := range mst.Tree(netPins) {
			nets = append(nets, netlist.TwoPin{A: netPins[edge[0]], B: netPins[edge[1]]})
		}
	}
	r.pinScratch = pts[:0]
	s := &Solution{
		Expr:       l.expr(),
		Placement:  pl,
		Nets:       nets,
		Area:       chip.Area(),
		Wirelength: wire,
	}
	if r.Cfg.Gamma != 0 && r.Cfg.Estimator != nil {
		if r.moveEst != nil {
			// The delta engine commits (chip, nets) as its cached state;
			// saState.RejectMove rolls it back when the annealer discards
			// the move. Bit-identical to Estimator.Score.
			s.Congestion = r.moveEst.Score(chip, nets)
		} else {
			s.Congestion = r.Cfg.Estimator.Score(chip, nets)
		}
	}
	if in := r.instr; in != nil {
		in.evals.Inc()
		in.area.Set(s.Area)
		in.wire.Set(s.Wirelength)
		in.cgt.Set(s.Congestion)
	}
	return s
}

// Evaluate scores an arbitrary expression under this Runner's config,
// including the normalized cost.
func (r *Runner) Evaluate(e slicing.Expr) *Solution {
	s := r.evaluate(e)
	s.Cost = r.cost(s)
	return s
}

func (r *Runner) cost(s *Solution) float64 {
	c := r.Cfg.Alpha*s.Area/r.normArea + r.Cfg.Beta*s.Wirelength/r.normWire
	if r.Cfg.Gamma != 0 {
		c += r.Cfg.Gamma * s.Congestion / r.normCgt
	}
	if in := r.instr; in != nil {
		in.cost.Set(c)
		in.costH.Observe(c)
	}
	return c
}

// saState adapts (Runner, layout) to anneal.State. States are
// immutable: Neighbor perturbs a copy.
type saState struct {
	r    *Runner
	l    layout
	cost float64
}

func (s *saState) Cost() float64 { return s.cost }

func (s *saState) Neighbor(rng *rand.Rand) anneal.State {
	l := s.l.neighbor(rng)
	sol := s.r.evaluateLayout(l)
	return &saState{r: s.r, l: l, cost: s.r.cost(sol)}
}

// AcceptMove implements anneal.MoveAware: the proposal this state's
// evaluation committed into the delta scorer's cache became the current
// state, so the cache is already correct.
func (s *saState) AcceptMove() {}

// RejectMove implements anneal.MoveAware: the annealer discarded this
// proposal, so the delta scorer's cache — which Neighbor's evaluation
// committed to the proposed state — rolls back to the pre-move state.
func (s *saState) RejectMove() {
	if s.r.moveEst != nil {
		s.r.moveEst.Rollback()
	}
}

// Run anneals from the representation's canonical initial state (or
// from Cfg.Resume) and returns the best solution. When onTemp is
// non-nil it is invoked after every temperature step with the
// *current* locally-optimized solution — exactly what the paper's
// Experiment 2 extracts "at each temperature-dropping step".
//
// The context (nil means background) is checked cooperatively at every
// proposed move and — for estimators supporting the WithContext hook —
// at evaluation shard boundaries. On cancellation Run returns the best
// solution found so far together with anneal.ErrCanceled or
// anneal.ErrDeadline, and writes one final boundary checkpoint when a
// sink is configured.
func (r *Runner) Run(ctx context.Context, onTemp func(step int, sol *Solution)) (*Solution, anneal.Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	init, err := r.initialLayout()
	if err != nil {
		panic(err) // validated in New
	}
	// Hand a cancelable context to estimators that can bail at shard
	// boundaries. The wrap is skipped for non-cancelable contexts so
	// plain runs keep their evaluation pools warm. restoreEstimator
	// swaps the plain estimator back before the final best-solution
	// resolution: a bailed-out evaluation may carry a partial score, and
	// the returned best-so-far must be fully evaluated even on cancel.
	restoreEstimator := func() {}
	if ctx.Done() != nil && r.Cfg.Estimator != nil {
		if p, ok := r.Cfg.Estimator.(interface{ WithContext(context.Context) any }); ok {
			if est, ok := p.WithContext(ctx).(Estimator); ok {
				prev := r.Cfg.Estimator
				r.Cfg.Estimator = est
				restoreEstimator = func() { r.Cfg.Estimator = prev }
				defer restoreEstimator()
			}
		}
	}
	resolve := func(l layout) *Solution {
		sol := r.evaluateLayout(l)
		sol.Cost = r.cost(sol)
		return sol
	}
	tr := r.Cfg.Trace
	r.Cfg.Status.Begin(r.Circuit.Name, r.estimatorName(), r.Cfg.Anneal.Seed)
	root := r.Cfg.Spans.Start("run")
	//irlint:allow detsource(obs timing only)
	start := time.Now()
	tr.Emit(obs.RunStartEvent{
		Ev:      obs.EvRunStart,
		Time:    start.UTC().Format(time.RFC3339),
		Version: buildinfo.Version(),
		Circuit: r.Circuit.Name,
		Modules: len(r.Circuit.Modules),
		Nets:    len(r.Circuit.Nets),
		Seed:    r.Cfg.Anneal.Seed,
		Alpha:   r.Cfg.Alpha, Beta: r.Cfg.Beta, Gamma: r.Cfg.Gamma,
		Model:   r.estimatorName(),
		Pitch:   r.Cfg.Pitch,
		Workers: r.Cfg.Workers,
	})
	s0 := &saState{r: r, l: init, cost: resolve(init).Cost}
	cfg := r.Cfg.Anneal
	if cfg.Obs == nil {
		cfg.Obs = r.Cfg.Obs
	}
	if cfg.Trace == nil {
		cfg.Trace = tr
	}
	if cfg.Recorder == nil {
		cfg.Recorder = r.Cfg.Recorder
	}
	if cfg.Status == nil {
		cfg.Status = r.Cfg.Status
	}
	cfg.CheckpointEvery = r.Cfg.CheckpointEvery
	if sink := r.Cfg.Checkpoint; sink != nil {
		cfg.Checkpoint = func(as *anneal.Snapshot) error {
			snap, err := r.snapshot(as)
			if err != nil {
				return err
			}
			return sink(snap)
		}
	}
	if r.Cfg.Resume != nil {
		as, err := r.annealSnapshot(r.Cfg.Resume)
		if err != nil {
			return nil, anneal.Stats{}, err
		}
		cfg.Resume = as
	}
	if onTemp != nil || tr != nil {
		cfg.OnTemperature = func(step int, _ float64, cur, _ anneal.State) {
			// resolve never touches the annealer's RNG, so the extra
			// evaluations a trace triggers cannot perturb the search.
			sol := resolve(cur.(*saState).l)
			tr.Emit(obs.SolutionEvent{
				Ev: obs.EvSolution, Step: step,
				Area: sol.Area, Wirelength: sol.Wirelength, Congestion: sol.Congestion,
				NormArea:       sol.Area / r.normArea,
				NormWirelength: sol.Wirelength / r.normWire,
				NormCongestion: sol.Congestion / r.normCgt,
				Cost:           sol.Cost,
			})
			if onTemp != nil {
				onTemp(step, sol)
			}
		}
	}
	spAnneal := root.Child("anneal")
	cfg.Span = spAnneal
	best, stats, runErr := anneal.Run(ctx, cfg, s0)
	spAnneal.End()
	restoreEstimator()
	spFin := root.Child("finalize")
	sol := resolve(best.(*saState).l)
	spFin.End()
	root.End()
	outcome := obs.OutcomeCompleted
	switch {
	case runErr == nil:
	case errors.Is(runErr, anneal.ErrCanceled):
		outcome = obs.OutcomeCanceled
	case errors.Is(runErr, anneal.ErrDeadline):
		outcome = obs.OutcomeDeadline
	default:
		outcome = obs.OutcomeError
	}
	r.Cfg.Status.End(outcome)
	//irlint:allow detsource(obs timing only)
	elapsed := time.Since(start).Seconds()
	if in := r.instr; in != nil && elapsed > 0 {
		in.evalsPerSec.Set(float64(stats.Moves+stats.CalibrationMoves) / elapsed)
	}
	if r.Cfg.Spans != nil {
		tr.Emit(obs.SpansEvent{Ev: obs.EvSpans, Spans: r.Cfg.Spans.Aggregates()})
	}
	tr.Emit(obs.RunEndEvent{
		Ev: obs.EvRunEnd, Outcome: outcome,
		Temps: stats.Temps, Moves: stats.Moves,
		CalibrationMoves: stats.CalibrationMoves,
		Accepted:         stats.Accepted, UphillAccepted: stats.UphillAccepted,
		BestStep: stats.BestStep,
		InitTemp: stats.InitTemp, FinalTemp: stats.FinalTemp,
		InitCost: stats.InitCost, FinalCost: stats.FinalCost,
		Seconds: elapsed,
		Metrics: r.Cfg.Obs.Snapshot(),
	})
	if outcome != obs.OutcomeCompleted {
		// An interrupted run is a forensic event: dump the flight
		// recorder (no-op when unarmed). Dump failures never mask the
		// run's own error.
		r.Cfg.Recorder.Dump(outcome)
	}
	return sol, stats, runErr
}

func (r *Runner) estimatorName() string {
	if r.Cfg.Estimator == nil {
		return "none"
	}
	return r.Cfg.Estimator.Name()
}
