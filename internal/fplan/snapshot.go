package fplan

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"

	"irgrid/internal/anneal"
	"irgrid/internal/seqpair"
	"irgrid/internal/slicing"
)

// SnapshotFormat is the version of the Snapshot payload layout. It
// only changes when the meaning of an existing field changes; adding
// optional fields does not bump it.
const SnapshotFormat = 1

// ErrSnapshotMismatch reports a resume attempt against a snapshot
// taken from a different circuit or configuration (detected via the
// config digest embedded at checkpoint time).
var ErrSnapshotMismatch = errors.New("fplan: snapshot does not match this circuit/config")

// LayoutState is the serializable form of an annealer search state:
// the Polish expression for the slicing representation, or the
// sequence pair plus rotation flags for seqpair.
type LayoutState struct {
	Repr string `json:"repr"`
	Expr []int  `json:"expr,omitempty"`
	P1   []int  `json:"p1,omitempty"`
	P2   []int  `json:"p2,omitempty"`
	Rot  []bool `json:"rot,omitempty"`
}

// Snapshot is the durable checkpoint of a Runner.Run in flight: the
// anneal schedule position, the exact PRNG position, both search
// states, and a digest binding the snapshot to the circuit and
// configuration that produced it. Snapshots are taken only at
// temperature-step boundaries, so resuming one is bit-identical to
// never having stopped (TestCheckpointResumeDeterminism).
//
// The normalization constants are deliberately not stored: they are
// re-derived deterministically from the circuit and seed when the
// resuming Runner is constructed, and the digest guarantees those
// inputs match.
type Snapshot struct {
	Format   int          `json:"format"`
	Circuit  string       `json:"circuit"`
	Digest   string       `json:"digest"`
	Step     int          `json:"step"`
	Temp     float64      `json:"temp"`
	Draws    uint64       `json:"draws"`
	Cur      LayoutState  `json:"cur"`
	Best     LayoutState  `json:"best"`
	CurCost  float64      `json:"cur_cost"`
	BestCost float64      `json:"best_cost"`
	Stats    anneal.Stats `json:"stats"`
}

// configDigest fingerprints everything a resumed run must share with
// the run that wrote the snapshot: the full circuit and every config
// knob that shapes the search trajectory. MaxTemps is deliberately
// excluded — extending or shortening the schedule cap is a legitimate
// reason to resume — as are Workers and FullEval (results are
// bit-identical for every worker count and evaluation mode) and
// telemetry.
func (r *Runner) configDigest() string {
	h := sha256.New()
	c := r.Circuit
	fmt.Fprintf(h, "circuit %s %d %d\n", c.Name, len(c.Modules), len(c.Nets))
	for _, m := range c.Modules {
		fmt.Fprintf(h, "m %s %g %g %v %g %g\n", m.Name, m.W, m.H, m.Pad, m.MinAspect, m.MaxAspect)
	}
	for _, n := range c.Nets {
		fmt.Fprintf(h, "n %s", n.Name)
		for _, p := range n.Pins {
			fmt.Fprintf(h, " %d:%g:%g", p.Module, p.FX, p.FY)
		}
		fmt.Fprintln(h)
	}
	cfg := &r.Cfg
	fmt.Fprintf(h, "cfg %g %g %g pitch=%g rot=%v wire=%q repr=%q est=%q norm=%d\n",
		cfg.Alpha, cfg.Beta, cfg.Gamma, cfg.Pitch, cfg.AllowRotate,
		string(cfg.Wire), cfg.Representation, r.estimatorName(), cfg.NormSamples)
	a := &cfg.Anneal
	fmt.Fprintf(h, "anneal seed=%d ia=%g cool=%g mpt=%d mar=%g cal=%d\n",
		a.Seed, a.InitAccept, a.Cooling, a.MovesPerTemp, a.MinAcceptRate, a.CalibrationMoves)
	return hex.EncodeToString(h.Sum(nil))
}

// encodeLayout flattens a search state for serialization.
func encodeLayout(l layout) (LayoutState, error) {
	switch v := l.(type) {
	case slicingLayout:
		return LayoutState{Repr: ReprSlicing, Expr: append([]int(nil), v.e...)}, nil
	case seqpairLayout:
		return LayoutState{
			Repr: ReprSeqPair,
			P1:   append([]int(nil), v.sp.P1...),
			P2:   append([]int(nil), v.sp.P2...),
			Rot:  append([]bool(nil), v.sp.Rot...),
		}, nil
	default:
		return LayoutState{}, fmt.Errorf("fplan: unsupported layout type %T", l)
	}
}

// decodeLayout reconstructs and validates a search state against this
// Runner's circuit and representation.
func (r *Runner) decodeLayout(s LayoutState) (layout, error) {
	repr := r.Cfg.Representation
	if repr == "" {
		repr = ReprSlicing
	}
	if s.Repr != repr {
		return nil, fmt.Errorf("%w: snapshot representation %q, config %q", ErrSnapshotMismatch, s.Repr, repr)
	}
	switch s.Repr {
	case ReprSlicing:
		e := slicing.Expr(append([]int(nil), s.Expr...))
		if err := e.Validate(len(r.Circuit.Modules)); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSnapshotMismatch, err)
		}
		return slicingLayout{e: e, p: r.packer}, nil
	case ReprSeqPair:
		sp := &seqpair.Pair{
			P1:  append([]int(nil), s.P1...),
			P2:  append([]int(nil), s.P2...),
			Rot: append([]bool(nil), s.Rot...),
		}
		if err := sp.Validate(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSnapshotMismatch, err)
		}
		if len(sp.P1) != len(r.Circuit.Modules) {
			return nil, fmt.Errorf("%w: snapshot over %d modules, circuit has %d",
				ErrSnapshotMismatch, len(sp.P1), len(r.Circuit.Modules))
		}
		return seqpairLayout{
			sp:          sp,
			p:           seqpair.NewPacker(r.Circuit.Modules),
			allowRotate: r.Cfg.AllowRotate,
		}, nil
	default:
		return nil, fmt.Errorf("%w: unknown representation %q", ErrSnapshotMismatch, s.Repr)
	}
}

// snapshot converts an anneal boundary snapshot into the serializable
// checkpoint document.
func (r *Runner) snapshot(as *anneal.Snapshot) (*Snapshot, error) {
	cur, err := encodeLayout(as.Cur.(*saState).l)
	if err != nil {
		return nil, err
	}
	best, err := encodeLayout(as.Best.(*saState).l)
	if err != nil {
		return nil, err
	}
	return &Snapshot{
		Format:   SnapshotFormat,
		Circuit:  r.Circuit.Name,
		Digest:   r.digest,
		Step:     as.Step,
		Temp:     as.Temp,
		Draws:    as.Draws,
		Cur:      cur,
		Best:     best,
		CurCost:  as.CurCost,
		BestCost: as.BestCost,
		Stats:    as.Stats,
	}, nil
}

// annealSnapshot validates a checkpoint against this Runner and
// reconstructs the anneal-level resume state.
func (r *Runner) annealSnapshot(s *Snapshot) (*anneal.Snapshot, error) {
	if s.Format != SnapshotFormat {
		return nil, fmt.Errorf("%w: snapshot format %d, want %d", ErrSnapshotMismatch, s.Format, SnapshotFormat)
	}
	if s.Digest != r.digest {
		return nil, fmt.Errorf("%w: circuit %q (config digest changed)", ErrSnapshotMismatch, s.Circuit)
	}
	curL, err := r.decodeLayout(s.Cur)
	if err != nil {
		return nil, err
	}
	bestL, err := r.decodeLayout(s.Best)
	if err != nil {
		return nil, err
	}
	return &anneal.Snapshot{
		Step:     s.Step,
		Temp:     s.Temp,
		Draws:    s.Draws,
		Cur:      &saState{r: r, l: curL, cost: s.CurCost},
		Best:     &saState{r: r, l: bestL, cost: s.BestCost},
		CurCost:  s.CurCost,
		BestCost: s.BestCost,
		Stats:    s.Stats,
	}, nil
}
