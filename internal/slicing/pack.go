package slicing

import (
	"fmt"
	"math"

	"irgrid/internal/geom"
	"irgrid/internal/netlist"
)

// shape is one non-dominated (W, H) realization of a subtree, with
// enough bookkeeping to recover the children's choices top-down.
type shape struct {
	w, h   float64
	li, ri int  // chosen shape index in left/right child (internal nodes)
	rot    bool // leaf realized rotated 90°
}

// node is a slicing-tree node built from the postfix expression.
type node struct {
	op          int // module index for leaves; OpH/OpV for internal
	left, right *node
	curve       []shape // sorted by w ascending, h strictly descending
}

// Packer evaluates Polish expressions for a fixed module list. It
// reuses node storage across calls, so a single Packer is cheap to call
// from the simulated-annealing hot loop. A Packer is not safe for
// concurrent use; create one per goroutine.
type Packer struct {
	mods        []netlist.Module
	allowRotate bool
	nodes       []node // arena, reused between Pack calls
	stack       []*node
	leafCurves  [][]shape // precomputed per module
}

// softShapeSteps is the number of discrete realizations a soft module
// contributes to its shape curve. All points of an equal-area curve are
// mutually non-dominated, so more steps only refine the packing.
const softShapeSteps = 8

// NewPacker returns a Packer for the module list. When allowRotate is
// true every non-pad hard module may be realized rotated by 90°; soft
// modules are realized at softShapeSteps aspect ratios spanning their
// [MinAspect, MaxAspect] range (rotation is subsumed by the range).
func NewPacker(mods []netlist.Module, allowRotate bool) *Packer {
	p := &Packer{mods: mods, allowRotate: allowRotate}
	p.leafCurves = make([][]shape, len(mods))
	for i, m := range mods {
		if m.Soft() {
			p.leafCurves[i] = softCurve(m)
			continue
		}
		c := []shape{{w: m.W, h: m.H}}
		if allowRotate && !m.Pad && m.W != m.H {
			c = append(c, shape{w: m.H, h: m.W, rot: true})
		}
		// Sort the (at most two) points by width ascending and drop
		// dominated ones so the curve invariant holds.
		if len(c) == 2 {
			if c[0].w > c[1].w {
				c[0], c[1] = c[1], c[0]
			}
			if c[1].h >= c[0].h { // wider and not shorter: dominated
				c = c[:1]
			}
		}
		p.leafCurves[i] = c
	}
	return p
}

// softCurve discretizes a soft module's equal-area shape curve with
// geometrically spaced aspect ratios: w = sqrt(area·ar), h = area/w.
// Points come out width-ascending and height-descending by
// construction.
func softCurve(m netlist.Module) []shape {
	area := m.Area()
	lo, hi := m.MinAspect, m.MaxAspect
	c := make([]shape, 0, softShapeSteps)
	for k := 0; k < softShapeSteps; k++ {
		f := float64(k) / float64(softShapeSteps-1)
		ar := lo * math.Pow(hi/lo, f) // geometric interpolation
		w := math.Sqrt(area * ar)
		c = append(c, shape{w: w, h: area / w})
	}
	return c
}

// Pack evaluates the expression and returns the minimum-area placement
// it encodes, along with the chip bounding box. The returned Placement
// is freshly allocated; the Packer's internal arena is reused.
func (p *Packer) Pack(e Expr) (*netlist.Placement, error) {
	root, err := p.build(e)
	if err != nil {
		return nil, err
	}
	// Choose the minimum-area corner of the root curve.
	best, bestArea := 0, math.Inf(1)
	for i, s := range root.curve {
		if a := s.w * s.h; a < bestArea {
			best, bestArea = i, a
		}
	}
	pl := &netlist.Placement{
		Rects:   make([]geom.Rect, len(p.mods)),
		Rotated: make([]bool, len(p.mods)),
	}
	p.place(root, best, 0, 0, pl)
	s := root.curve[best]
	pl.Chip = geom.Rect{X1: 0, Y1: 0, X2: s.w, Y2: s.h}
	return pl, nil
}

// MinArea evaluates the expression and returns only the minimal
// bounding-box area, width and height, skipping placement recovery.
func (p *Packer) MinArea(e Expr) (area, w, h float64, err error) {
	root, err := p.build(e)
	if err != nil {
		return 0, 0, 0, err
	}
	area = math.Inf(1)
	for _, s := range root.curve {
		if a := s.w * s.h; a < area {
			area, w, h = a, s.w, s.h
		}
	}
	return area, w, h, nil
}

// build constructs the slicing tree and bottom-up shape curves.
func (p *Packer) build(e Expr) (*node, error) {
	// The arena must never reallocate mid-build: node pointers are held
	// in the stack and in parent links. Size it up front.
	if cap(p.nodes) < len(e) {
		p.nodes = make([]node, 0, len(e))
	}
	p.nodes = p.nodes[:0]
	p.stack = p.stack[:0]
	alloc := func() *node {
		p.nodes = p.nodes[:len(p.nodes)+1]
		return &p.nodes[len(p.nodes)-1]
	}
	for _, v := range e {
		nd := alloc()
		if IsOperator(v) {
			if len(p.stack) < 2 {
				return nil, fmt.Errorf("slicing: malformed expression %v", e)
			}
			nd.op = v
			nd.right = p.stack[len(p.stack)-1]
			nd.left = p.stack[len(p.stack)-2]
			p.stack = p.stack[:len(p.stack)-2]
			nd.curve = combine(v, nd.left.curve, nd.right.curve, nd.curve[:0])
		} else {
			if v < 0 || v >= len(p.mods) {
				return nil, fmt.Errorf("slicing: operand %d out of range", v)
			}
			nd.op = v
			nd.left, nd.right = nil, nil
			nd.curve = append(nd.curve[:0], p.leafCurves[v]...)
		}
		p.stack = append(p.stack, nd)
	}
	if len(p.stack) != 1 {
		return nil, fmt.Errorf("slicing: malformed expression %v", e)
	}
	return p.stack[0], nil
}

// combine merges two shape curves under the given operator using the
// Stockmeyer two-pointer walk, producing at most len(a)+len(b)-1
// non-dominated points. Input curves are sorted by width strictly
// ascending / height strictly descending, and the output preserves that
// invariant by construction.
//
// OpV places b to the right of a: W = a.w + b.w, H = max(a.h, b.h).
// Starting from the narrowest/tallest point of each child and always
// advancing the child that realizes the height maximum enumerates every
// potentially optimal pairing with strictly increasing width and
// strictly decreasing height. OpH (b stacked on a: W = max, H = sum) is
// the transpose: walk from the widest/shortest ends backwards.
func combine(op int, a, b, out []shape) []shape {
	if op == OpV {
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			out = append(out, shape{
				w:  a[i].w + b[j].w,
				h:  math.Max(a[i].h, b[j].h),
				li: i, ri: j,
			})
			switch {
			case a[i].h > b[j].h:
				i++
			case a[i].h < b[j].h:
				j++
			default:
				i++
				j++
			}
		}
		return out
	}
	// OpH: walk backwards from the widest point of each child; emitted
	// widths strictly decrease and heights strictly increase, so the
	// result is reversed at the end to restore the curve invariant.
	i, j := len(a)-1, len(b)-1
	for i >= 0 && j >= 0 {
		out = append(out, shape{
			w:  math.Max(a[i].w, b[j].w),
			h:  a[i].h + b[j].h,
			li: i, ri: j,
		})
		switch {
		case a[i].w > b[j].w:
			i--
		case a[i].w < b[j].w:
			j--
		default:
			i--
			j--
		}
	}
	for l, r := 0, len(out)-1; l < r; l, r = l+1, r-1 {
		out[l], out[r] = out[r], out[l]
	}
	return out
}

// place walks the tree assigning absolute rectangles, bottom-left
// packed: OpV puts right child to the right, OpH puts it on top.
func (p *Packer) place(nd *node, k int, x, y float64, pl *netlist.Placement) {
	s := nd.curve[k]
	if nd.left == nil { // leaf
		pl.Rects[nd.op] = geom.Rect{X1: x, Y1: y, X2: x + s.w, Y2: y + s.h}
		pl.Rotated[nd.op] = s.rot
		return
	}
	p.place(nd.left, s.li, x, y, pl)
	ls := nd.left.curve[s.li]
	if nd.op == OpV {
		p.place(nd.right, s.ri, x+ls.w, y, pl)
	} else {
		p.place(nd.right, s.ri, x, y+ls.h, pl)
	}
}
