package slicing

import (
	"math"
	"math/rand"
	"testing"

	"irgrid/internal/netlist"
)

func softMods() []netlist.Module {
	return []netlist.Module{
		{Name: "s0", W: 40, H: 40, MinAspect: 0.25, MaxAspect: 4},
		{Name: "s1", W: 20, H: 80, MinAspect: 0.25, MaxAspect: 4},
		{Name: "h0", W: 30, H: 50},
	}
}

func TestSoftCurveProperties(t *testing.T) {
	m := netlist.Module{Name: "s", W: 40, H: 40, MinAspect: 0.25, MaxAspect: 4}
	c := softCurve(m)
	if len(c) != softShapeSteps {
		t.Fatalf("%d shapes", len(c))
	}
	for k, s := range c {
		if math.Abs(s.w*s.h-m.Area()) > 1e-6 {
			t.Errorf("shape %d area %g, want %g", k, s.w*s.h, m.Area())
		}
		ar := s.w / s.h
		if ar < m.MinAspect-1e-9 || ar > m.MaxAspect+1e-9 {
			t.Errorf("shape %d aspect %g outside [%g,%g]", k, ar, m.MinAspect, m.MaxAspect)
		}
		if k > 0 && (s.w <= c[k-1].w || s.h >= c[k-1].h) {
			t.Errorf("curve not clean at %d", k)
		}
	}
	// The range endpoints are realized.
	if math.Abs(c[0].w/c[0].h-m.MinAspect) > 1e-9 {
		t.Errorf("first aspect %g", c[0].w/c[0].h)
	}
	if math.Abs(c[len(c)-1].w/c[len(c)-1].h-m.MaxAspect) > 1e-9 {
		t.Errorf("last aspect %g", c[len(c)-1].w/c[len(c)-1].h)
	}
}

func TestSoftPackingRespectsConstraints(t *testing.T) {
	ms := softMods()
	p := NewPacker(ms, true)
	rng := rand.New(rand.NewSource(71))
	e := Initial(len(ms))
	for i := 0; i < 200; i++ {
		e.Perturb(rng)
		pl, err := p.Pack(e)
		if err != nil {
			t.Fatal(err)
		}
		for mi, m := range ms {
			r := pl.Rects[mi]
			if m.Soft() {
				if math.Abs(r.Area()-m.Area()) > 1e-6 {
					t.Fatalf("soft module %s area %g, want %g", m.Name, r.Area(), m.Area())
				}
				ar := r.W() / r.H()
				if ar < m.MinAspect-1e-9 || ar > m.MaxAspect+1e-9 {
					t.Fatalf("soft module %s aspect %g outside range", m.Name, ar)
				}
			} else {
				const eps = 1e-9
				okPlain := math.Abs(r.W()-m.W) < eps && math.Abs(r.H()-m.H) < eps
				okRot := math.Abs(r.W()-m.H) < eps && math.Abs(r.H()-m.W) < eps
				if !okPlain && !okRot {
					t.Fatalf("hard module %s realized as %gx%g", m.Name, r.W(), r.H())
				}
			}
		}
	}
}

func TestSoftImprovesPacking(t *testing.T) {
	// Two mismatched-height modules side by side: soft variants deform
	// to equal heights and waste no area.
	hard := []netlist.Module{
		{Name: "a", W: 10, H: 40},
		{Name: "b", W: 40, H: 10},
	}
	soft := []netlist.Module{
		{Name: "a", W: 10, H: 40, MinAspect: 0.1, MaxAspect: 10},
		{Name: "b", W: 40, H: 10, MinAspect: 0.1, MaxAspect: 10},
	}
	e := Expr{0, 1, OpV}
	hardArea, _, _, err := NewPacker(hard, false).MinArea(e)
	if err != nil {
		t.Fatal(err)
	}
	softArea, _, _, err := NewPacker(soft, false).MinArea(e)
	if err != nil {
		t.Fatal(err)
	}
	if softArea >= hardArea {
		t.Errorf("soft packing %g not better than hard %g", softArea, hardArea)
	}
	// Soft packing approaches the module-area lower bound.
	lower := 400.0 + 400.0
	if softArea > lower*1.35 {
		t.Errorf("soft packing %g too far from lower bound %g", softArea, lower)
	}
}

func TestSoftModuleNotRotated(t *testing.T) {
	ms := softMods()
	p := NewPacker(ms, true)
	pl, err := p.Pack(Expr{0, 1, OpV, 2, OpH})
	if err != nil {
		t.Fatal(err)
	}
	for mi, m := range ms {
		if m.Soft() && pl.Rotated[mi] {
			t.Errorf("soft module %s marked rotated", m.Name)
		}
	}
}
