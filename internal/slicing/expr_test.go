package slicing

import (
	"math/rand"
	"testing"
)

func TestInitialIsValid(t *testing.T) {
	for n := 1; n <= 60; n++ {
		e := Initial(n)
		if err := e.Validate(n); err != nil {
			t.Fatalf("Initial(%d): %v", n, err)
		}
	}
}

func TestInitialPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n=0")
		}
	}()
	Initial(0)
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		e    Expr
		n    int
	}{
		{"short", Expr{0, 1}, 2},
		{"balloting", Expr{0, OpV, 1}, 2},
		{"duplicate operand", Expr{0, 0, OpV}, 2},
		{"out of range", Expr{0, 5, OpV}, 2},
		{"not normalized", Expr{0, 1, OpV, 2, OpV, OpV, 3}, 4},
	}
	for _, c := range cases {
		if err := c.e.Validate(c.n); err == nil {
			t.Errorf("%s: Validate accepted %v", c.name, c.e)
		}
	}
}

func TestValidateAcceptsNormalized(t *testing.T) {
	// 0 1 V 2 H: valid, normalized.
	e := Expr{0, 1, OpV, 2, OpH}
	if err := e.Validate(3); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// 0 1 2 V H is normalized too (V then H differ).
	e2 := Expr{0, 1, 2, OpV, OpH}
	if err := e2.Validate(3); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestString(t *testing.T) {
	e := Expr{0, 1, OpV, 2, OpH}
	if got := e.String(); got != "0 1 V 2 H" {
		t.Errorf("String = %q", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	e := Initial(4)
	c := e.Clone()
	c[0], c[1] = c[1], c[0]
	if e[0] != 0 || e[1] != 1 {
		t.Error("Clone aliases the original")
	}
}

func TestM1PreservesValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e := Initial(10)
	for i := 0; i < 2000; i++ {
		if !e.M1(rng) {
			t.Fatal("M1 failed")
		}
		if err := e.Validate(10); err != nil {
			t.Fatalf("after M1 #%d: %v (%v)", i, err, e)
		}
	}
}

func TestM2PreservesValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := Initial(10)
	for i := 0; i < 2000; i++ {
		if !e.M2(rng) {
			t.Fatal("M2 failed")
		}
		if err := e.Validate(10); err != nil {
			t.Fatalf("after M2 #%d: %v (%v)", i, err, e)
		}
	}
}

func TestM3PreservesValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e := Initial(10)
	// M3 is infeasible on the all-V initial chain (any swap creates
	// either a balloting violation or adjacent identical operators);
	// mix the operators first.
	for i := 0; i < 5; i++ {
		e.M2(rng)
	}
	applied := 0
	for i := 0; i < 2000; i++ {
		if e.M3(rng) {
			applied++
		}
		if err := e.Validate(10); err != nil {
			t.Fatalf("after M3 #%d: %v (%v)", i, err, e)
		}
	}
	if applied == 0 {
		t.Error("M3 never applied")
	}
}

func TestPerturbMixPreservesValidity(t *testing.T) {
	for _, n := range []int{2, 3, 5, 17, 49} {
		rng := rand.New(rand.NewSource(int64(n)))
		e := Initial(n)
		for i := 0; i < 3000; i++ {
			e.Perturb(rng)
			if err := e.Validate(n); err != nil {
				t.Fatalf("n=%d after perturb #%d: %v (%v)", n, i, err, e)
			}
		}
	}
}

func TestPerturbReachesBothOperators(t *testing.T) {
	// The move set must be able to introduce H cuts from the all-V
	// initial expression.
	rng := rand.New(rand.NewSource(4))
	e := Initial(6)
	sawH := false
	for i := 0; i < 200 && !sawH; i++ {
		e.Perturb(rng)
		for _, v := range e {
			if v == OpH {
				sawH = true
			}
		}
	}
	if !sawH {
		t.Error("perturbation never produced an H operator")
	}
}

func TestPerturbSingleModuleNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e := Initial(1)
	e.Perturb(rng) // must not panic
	if err := e.Validate(1); err != nil {
		t.Fatal(err)
	}
}

func TestM1OnTwoModules(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	e := Expr{0, 1, OpV}
	if !e.M1(rng) {
		t.Fatal("M1 failed")
	}
	if e[0] != 1 || e[1] != 0 {
		t.Errorf("M1 = %v", e)
	}
}
