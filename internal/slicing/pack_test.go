package slicing

import (
	"math"
	"math/rand"
	"testing"

	"irgrid/internal/geom"
	"irgrid/internal/netlist"
)

func mods(dims ...[2]float64) []netlist.Module {
	out := make([]netlist.Module, len(dims))
	for i, d := range dims {
		out[i] = netlist.Module{Name: string(rune('a' + i)), W: d[0], H: d[1]}
	}
	return out
}

func TestPackSingleModule(t *testing.T) {
	p := NewPacker(mods([2]float64{3, 7}), false)
	pl, err := p.Pack(Expr{0})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Chip.W() != 3 || pl.Chip.H() != 7 {
		t.Errorf("chip = %v", pl.Chip)
	}
	if pl.Rects[0] != pl.Chip {
		t.Errorf("module rect = %v", pl.Rects[0])
	}
}

func TestPackSingleModuleRotationPicksSame(t *testing.T) {
	// Rotation cannot reduce the area of a single module.
	p := NewPacker(mods([2]float64{3, 7}), true)
	a, _, _, err := p.MinArea(Expr{0})
	if err != nil {
		t.Fatal(err)
	}
	if a != 21 {
		t.Errorf("area = %g", a)
	}
}

func TestPackTwoModulesV(t *testing.T) {
	p := NewPacker(mods([2]float64{2, 5}, [2]float64{3, 4}), false)
	pl, err := p.Pack(Expr{0, 1, OpV})
	if err != nil {
		t.Fatal(err)
	}
	// Side by side: width 5, height max(5,4)=5.
	if pl.Chip.W() != 5 || pl.Chip.H() != 5 {
		t.Errorf("chip = %v", pl.Chip)
	}
	if pl.Rects[1].X1 != 2 {
		t.Errorf("right module at %v", pl.Rects[1])
	}
}

func TestPackTwoModulesH(t *testing.T) {
	p := NewPacker(mods([2]float64{2, 5}, [2]float64{3, 4}), false)
	pl, err := p.Pack(Expr{0, 1, OpH})
	if err != nil {
		t.Fatal(err)
	}
	// Stacked: width max(2,3)=3, height 9; module 1 on top.
	if pl.Chip.W() != 3 || pl.Chip.H() != 9 {
		t.Errorf("chip = %v", pl.Chip)
	}
	if pl.Rects[1].Y1 != 5 {
		t.Errorf("top module at %v", pl.Rects[1])
	}
}

func TestPackRotationImproves(t *testing.T) {
	// Two 2x6 modules side by side: unrotated 4x6=24 (V) — with
	// rotation both can lie flat: 6x2 stacked (H) gives 6x4=24, but V
	// with rotation gives 12x2=24... pick shapes where rotation wins:
	// 1x4 and 4x1 side by side: no rotation V: w=5,h=4 → 20;
	// rotating the first to 4x1: V: w=8,h=1 → 8.
	p := NewPacker(mods([2]float64{1, 4}, [2]float64{4, 1}), true)
	a, _, _, err := p.MinArea(Expr{0, 1, OpV})
	if err != nil {
		t.Fatal(err)
	}
	if a != 8 {
		t.Errorf("area with rotation = %g, want 8", a)
	}
	pn := NewPacker(mods([2]float64{1, 4}, [2]float64{4, 1}), false)
	an, _, _, _ := pn.MinArea(Expr{0, 1, OpV})
	if an != 20 {
		t.Errorf("area without rotation = %g, want 20", an)
	}
}

func TestPackPadNotRotated(t *testing.T) {
	m := mods([2]float64{1, 4}, [2]float64{4, 1})
	m[0].Pad = true
	p := NewPacker(m, true)
	pl, err := p.Pack(Expr{0, 1, OpV})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Rotated[0] {
		t.Error("pad was rotated")
	}
}

func TestPackMalformed(t *testing.T) {
	p := NewPacker(mods([2]float64{1, 1}, [2]float64{1, 1}), false)
	for _, e := range []Expr{{0, OpV}, {0, 1}, {OpV}, {0, 9, OpV}} {
		if _, err := p.Pack(e); err == nil {
			t.Errorf("Pack(%v) should fail", e)
		}
	}
}

// checkPlacement verifies the fundamental packing invariants.
func checkPlacement(t *testing.T, pl *netlist.Placement, ms []netlist.Module, allowRotate bool) {
	t.Helper()
	for i, r := range pl.Rects {
		if !r.Valid() || r.Empty() {
			t.Fatalf("module %d has bad rect %v", i, r)
		}
		w, h := ms[i].W, ms[i].H
		if pl.Rotated[i] {
			if !allowRotate || ms[i].Pad {
				t.Fatalf("module %d illegally rotated", i)
			}
			w, h = h, w
		}
		if math.Abs(r.W()-w) > 1e-9 || math.Abs(r.H()-h) > 1e-9 {
			t.Fatalf("module %d dims %gx%g, want %gx%g", i, r.W(), r.H(), w, h)
		}
		const eps = 1e-6 // positions and curve widths sum in different orders
		if r.X1 < pl.Chip.X1-eps || r.X2 > pl.Chip.X2+eps ||
			r.Y1 < pl.Chip.Y1-eps || r.Y2 > pl.Chip.Y2+eps {
			t.Fatalf("module %d rect %v outside chip %v", i, r, pl.Chip)
		}
	}
	shrink := func(r geom.Rect) geom.Rect {
		const eps = 1e-6 // touching edges may differ in low float bits
		return geom.Rect{X1: r.X1 + eps, Y1: r.Y1 + eps, X2: r.X2 - eps, Y2: r.Y2 - eps}
	}
	for i := range pl.Rects {
		for j := i + 1; j < len(pl.Rects); j++ {
			if shrink(pl.Rects[i]).Overlaps(shrink(pl.Rects[j])) {
				t.Fatalf("modules %d and %d overlap: %v vs %v", i, j, pl.Rects[i], pl.Rects[j])
			}
		}
	}
}

func TestPackRandomExpressionsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{2, 3, 7, 15, 33} {
		ms := make([]netlist.Module, n)
		for i := range ms {
			ms[i] = netlist.Module{
				Name: "m" + string(rune('0'+i%10)) + string(rune('0'+i/10)),
				W:    1 + rng.Float64()*9,
				H:    1 + rng.Float64()*9,
			}
		}
		for _, rot := range []bool{false, true} {
			p := NewPacker(ms, rot)
			e := Initial(n)
			for iter := 0; iter < 300; iter++ {
				e.Perturb(rng)
				pl, err := p.Pack(e)
				if err != nil {
					t.Fatalf("n=%d iter=%d: %v", n, iter, err)
				}
				checkPlacement(t, pl, ms, rot)
			}
		}
	}
}

func TestPackAreaIsMinOverCurve(t *testing.T) {
	// MinArea must never exceed the area of the placement Pack returns,
	// and the two must agree.
	rng := rand.New(rand.NewSource(9))
	ms := mods([2]float64{2, 3}, [2]float64{4, 1}, [2]float64{5, 5}, [2]float64{1, 6})
	p := NewPacker(ms, true)
	e := Initial(4)
	for i := 0; i < 200; i++ {
		e.Perturb(rng)
		a, _, _, err := p.MinArea(e)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := p.Pack(e)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pl.Chip.Area()-a) > 1e-6 {
			t.Fatalf("Pack area %g != MinArea %g for %v", pl.Chip.Area(), a, e)
		}
	}
}

func TestPackChipBoundsAreTight(t *testing.T) {
	// The chip must equal the bounding box of the module rects.
	rng := rand.New(rand.NewSource(11))
	ms := mods([2]float64{2, 3}, [2]float64{4, 1}, [2]float64{5, 5})
	p := NewPacker(ms, false)
	e := Initial(3)
	for i := 0; i < 100; i++ {
		e.Perturb(rng)
		pl, _ := p.Pack(e)
		bb := pl.Rects[0]
		for _, r := range pl.Rects[1:] {
			bb = bb.Union(r)
		}
		// The slicing bounding box may exceed the union bbox in one
		// dimension only when a slack child is shorter than its slot;
		// for the chip both must still agree on the outer corners.
		if bb.X2 > pl.Chip.X2+1e-9 || bb.Y2 > pl.Chip.Y2+1e-9 {
			t.Fatalf("module bbox %v exceeds chip %v", bb, pl.Chip)
		}
	}
}

func TestCurveNonDominated(t *testing.T) {
	// Internal curves must be strictly increasing in width and
	// strictly decreasing in height.
	rng := rand.New(rand.NewSource(13))
	ms := mods([2]float64{2, 3}, [2]float64{4, 1}, [2]float64{5, 5}, [2]float64{1, 6}, [2]float64{2, 2})
	p := NewPacker(ms, true)
	e := Initial(5)
	for i := 0; i < 100; i++ {
		e.Perturb(rng)
		root, err := p.build(e)
		if err != nil {
			t.Fatal(err)
		}
		c := root.curve
		for k := 1; k < len(c); k++ {
			if c[k].w <= c[k-1].w || c[k].h >= c[k-1].h {
				t.Fatalf("curve not clean at %d: %+v", k, c)
			}
		}
	}
}

func TestCombineAgainstBruteForce(t *testing.T) {
	// Compare the Stockmeyer merge against exhaustive pairing for
	// random small curves.
	rng := rand.New(rand.NewSource(17))
	mkCurve := func(n int) []shape {
		ws := make([]float64, n)
		hs := make([]float64, n)
		for i := range ws {
			ws[i] = rng.Float64()*10 + 1
			hs[i] = rng.Float64()*10 + 1
		}
		// Build a clean curve: sort widths ascending, heights desc.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if ws[j] < ws[i] {
					ws[i], ws[j] = ws[j], ws[i]
				}
				if hs[j] > hs[i] {
					hs[i], hs[j] = hs[j], hs[i]
				}
			}
		}
		c := make([]shape, n)
		for i := range c {
			// Strictify to satisfy the invariant.
			c[i] = shape{w: ws[i] + float64(i)*1e-6, h: hs[i] - float64(i)*1e-6}
		}
		return c
	}
	minAreaBrute := func(op int, a, b []shape) float64 {
		best := math.Inf(1)
		for _, x := range a {
			for _, y := range b {
				var w, h float64
				if op == OpV {
					w, h = x.w+y.w, math.Max(x.h, y.h)
				} else {
					w, h = math.Max(x.w, y.w), x.h+y.h
				}
				if w*h < best {
					best = w * h
				}
			}
		}
		return best
	}
	for trial := 0; trial < 200; trial++ {
		a := mkCurve(1 + rng.Intn(5))
		b := mkCurve(1 + rng.Intn(5))
		for _, op := range []int{OpV, OpH} {
			merged := combine(op, a, b, nil)
			want := minAreaBrute(op, a, b)
			got := math.Inf(1)
			for _, s := range merged {
				if s.w*s.h < got {
					got = s.w * s.h
				}
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("op=%d: stockmeyer min area %g, brute force %g\na=%+v\nb=%+v", op, got, want, a, b)
			}
			// Verify the merged curve is clean.
			for k := 1; k < len(merged); k++ {
				if merged[k].w <= merged[k-1].w || merged[k].h >= merged[k-1].h {
					t.Fatalf("op=%d: merged curve not clean: %+v", op, merged)
				}
			}
		}
	}
}

func TestPackerReuseIsConsistent(t *testing.T) {
	// Re-packing the same expression after other expressions must give
	// identical results (arena reuse must not leak state).
	rng := rand.New(rand.NewSource(19))
	ms := mods([2]float64{2, 3}, [2]float64{4, 1}, [2]float64{5, 5}, [2]float64{1, 6})
	p := NewPacker(ms, true)
	e := Expr{0, 1, OpV, 2, OpH, 3, OpV}
	first, err := p.Pack(e)
	if err != nil {
		t.Fatal(err)
	}
	scratch := Initial(4)
	for i := 0; i < 50; i++ {
		scratch.Perturb(rng)
		if _, err := p.Pack(scratch); err != nil {
			t.Fatal(err)
		}
	}
	again, err := p.Pack(e)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first.Rects {
		if first.Rects[i] != again.Rects[i] || first.Rotated[i] != again.Rotated[i] {
			t.Fatalf("module %d differs after reuse: %v vs %v", i, first.Rects[i], again.Rects[i])
		}
	}
}
