package slicing

import (
	"math/rand"
	"testing"
)

// randomExpr returns a well-shuffled valid expression for n modules.
func randomExpr(rng *rand.Rand, n int) Expr {
	e := Initial(n)
	for i := 0; i < 8*n; i++ {
		e.Perturb(rng)
	}
	return e
}

// TestMovesPreserveValidityProperty drives long random move sequences
// over a range of module counts: every mutation must leave a valid
// normalized expression.
func TestMovesPreserveValidityProperty(t *testing.T) {
	iters := 400
	if testing.Short() {
		iters = 60
	}
	rng := rand.New(rand.NewSource(101))
	for n := 2; n <= 14; n++ {
		e := Initial(n)
		for i := 0; i < iters; i++ {
			var applied string
			switch rng.Intn(3) {
			case 0:
				if !e.M1(rng) {
					continue
				}
				applied = "M1"
			case 1:
				if !e.M2(rng) {
					continue
				}
				applied = "M2"
			default:
				if !e.M3(rng) {
					continue
				}
				applied = "M3"
			}
			if err := e.Validate(n); err != nil {
				t.Fatalf("n=%d iter %d: %s produced invalid expression %q: %v", n, i, applied, e, err)
			}
		}
	}
}

// TestM1RoundTrip: M1 swaps the i-th adjacent operand pair and leaves
// every position's operand/operator role unchanged, so replaying it
// with an identically seeded generator swaps the same pair back.
func TestM1RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(12)
		e := randomExpr(rng, n)
		orig := e.Clone()
		seed := rng.Int63()
		if !e.M1(rand.New(rand.NewSource(seed))) {
			t.Fatalf("n=%d: M1 infeasible", n)
		}
		if err := e.Validate(n); err != nil {
			t.Fatalf("after M1: %v", err)
		}
		if !e.M1(rand.New(rand.NewSource(seed))) {
			t.Fatal("inverse M1 infeasible")
		}
		if e.String() != orig.String() {
			t.Fatalf("M1 round-trip changed expression: %q -> %q", orig, e)
		}
	}
}

// TestM2RoundTrip: complementing the same operator chain twice is the
// identity, and chain boundaries don't move under M2.
func TestM2RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(12)
		e := randomExpr(rng, n)
		orig := e.Clone()
		seed := rng.Int63()
		if !e.M2(rand.New(rand.NewSource(seed))) {
			t.Fatalf("n=%d: M2 infeasible", n)
		}
		if err := e.Validate(n); err != nil {
			t.Fatalf("after M2: %v", err)
		}
		if !e.M2(rand.New(rand.NewSource(seed))) {
			t.Fatal("inverse M2 infeasible")
		}
		if e.String() != orig.String() {
			t.Fatalf("M2 round-trip changed expression: %q -> %q", orig, e)
		}
	}
}

// TestM3RoundTrip: M3 swaps exactly one adjacent operand-operator
// pair; locating the changed pair and swapping it back must restore
// the original, passing through only valid expressions.
func TestM3RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	trips := 0
	for trial := 0; trial < 400; trial++ {
		n := 3 + rng.Intn(12)
		e := randomExpr(rng, n)
		orig := e.Clone()
		if !e.M3(rng) {
			continue
		}
		trips++
		if err := e.Validate(n); err != nil {
			t.Fatalf("after M3: %v", err)
		}
		// The move touches exactly two adjacent positions.
		first := -1
		diffs := 0
		for i := range e {
			if e[i] != orig[i] {
				if first < 0 {
					first = i
				}
				diffs++
			}
		}
		if diffs != 2 || e[first] != orig[first+1] || e[first+1] != orig[first] {
			t.Fatalf("M3 did not swap one adjacent pair: %q -> %q", orig, e)
		}
		e[first], e[first+1] = e[first+1], e[first]
		if e.String() != orig.String() {
			t.Fatalf("M3 inverse failed: %q -> %q", orig, e)
		}
		if err := e.Validate(n); err != nil {
			t.Fatalf("restored expression invalid: %v", err)
		}
	}
	if trips < 300 {
		t.Fatalf("M3 was feasible only %d/400 times; property barely exercised", trips)
	}
}

// FuzzPolishExpr interprets the fuzz payload as a move script over a
// fuzzer-chosen module count and checks every intermediate expression
// stays valid and normalized, and that M1/M2 round-trip.
func FuzzPolishExpr(f *testing.F) {
	f.Add(uint8(5), int64(1), []byte{0, 1, 2, 0, 1, 2})
	f.Add(uint8(2), int64(7), []byte{2, 2, 2, 2})
	f.Add(uint8(16), int64(42), []byte{0, 2, 1, 0, 2, 1, 0})
	f.Fuzz(func(t *testing.T, nRaw uint8, seed int64, script []byte) {
		n := 1 + int(nRaw)%16
		rng := rand.New(rand.NewSource(seed))
		e := Initial(n)
		if err := e.Validate(n); err != nil {
			t.Fatalf("initial: %v", err)
		}
		for step, b := range script {
			switch b % 3 {
			case 0:
				s := rng.Int63()
				if e.M1(rand.New(rand.NewSource(s))) {
					after := e.String()
					if !e.M1(rand.New(rand.NewSource(s))) {
						t.Fatal("M1 inverse infeasible")
					}
					before := e.String()
					if !e.M1(rand.New(rand.NewSource(s))) || e.String() != after {
						t.Fatalf("M1 not an involution under one seed: %q vs %q (from %q)", e, after, before)
					}
				}
			case 1:
				s := rng.Int63()
				if e.M2(rand.New(rand.NewSource(s))) {
					after := e.String()
					if !e.M2(rand.New(rand.NewSource(s))) {
						t.Fatal("M2 inverse infeasible")
					}
					if !e.M2(rand.New(rand.NewSource(s))) || e.String() != after {
						t.Fatal("M2 not an involution under one seed")
					}
				}
			default:
				e.M3(rng)
			}
			if err := e.Validate(n); err != nil {
				t.Fatalf("step %d (op %d): invalid expression %q: %v", step, b%3, e, err)
			}
		}
	})
}
