// Package slicing implements the floorplan representation the paper's
// floorplanner is built on (§5: "based on simulated annealing algorithm
// with normalized Polish expression", Wong & Liu, DAC'86 [7]): slicing
// floorplans encoded as normalized Polish expressions, the three
// classic perturbation moves M1–M3, and shape-curve packing that places
// hard (rotatable) modules with minimum area via the Stockmeyer merge.
package slicing

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// Operator encoding inside an Expr: non-negative values are module
// indices (operands); OpH and OpV are the slicing operators.
const (
	// OpH composes two sub-floorplans vertically (B on top of A):
	// widths max, heights add.
	OpH = -1
	// OpV composes two sub-floorplans horizontally (B right of A):
	// widths add, heights max.
	OpV = -2
)

// Expr is a Polish (postfix) expression over module indices and the
// operators OpH/OpV. A valid expression for n modules has length 2n-1,
// contains every module index exactly once, satisfies the balloting
// property (every prefix has more operands than operators), and is
// normalized (no two consecutive identical operators).
type Expr []int

// IsOperator reports whether element v is OpH or OpV.
func IsOperator(v int) bool { return v == OpH || v == OpV }

// Initial returns the canonical starting expression
// 0 1 V 2 V ... n-1 V, which is normalized (operators are separated by
// operands) and packs the modules in a single row.
func Initial(n int) Expr {
	if n < 1 {
		panic("slicing: need at least one module")
	}
	e := make(Expr, 0, 2*n-1)
	e = append(e, 0)
	for i := 1; i < n; i++ {
		e = append(e, i, OpV)
	}
	return e
}

// Clone returns a deep copy of e.
func (e Expr) Clone() Expr { return append(Expr(nil), e...) }

// Validate checks the structural invariants of a Polish expression for
// n modules: length, operand set, balloting and normality.
func (e Expr) Validate(n int) error {
	if len(e) != 2*n-1 {
		return fmt.Errorf("slicing: expression length %d, want %d", len(e), 2*n-1)
	}
	seen := make([]bool, n)
	operands, operators := 0, 0
	for i, v := range e {
		if IsOperator(v) {
			operators++
			if operators >= operands {
				return fmt.Errorf("slicing: balloting violated at position %d", i)
			}
			if i > 0 && e[i-1] == v {
				return fmt.Errorf("slicing: not normalized: duplicate operator at position %d", i)
			}
		} else {
			if v < 0 || v >= n {
				return fmt.Errorf("slicing: operand %d out of range [0,%d)", v, n)
			}
			if seen[v] {
				return fmt.Errorf("slicing: operand %d appears twice", v)
			}
			seen[v] = true
			operands++
		}
	}
	if operands != n {
		return fmt.Errorf("slicing: %d operands, want %d", operands, n)
	}
	return nil
}

// valid is Validate without the error strings, for the move hot path.
func (e Expr) valid() bool {
	operands, operators := 0, 0
	for i, v := range e {
		if IsOperator(v) {
			operators++
			if operators >= operands {
				return false
			}
			if i > 0 && e[i-1] == v {
				return false
			}
		} else {
			operands++
		}
	}
	return operands == operators+1
}

// String renders the expression with H/V operator letters, e.g.
// "0 1 V 2 H".
func (e Expr) String() string {
	var b strings.Builder
	for i, v := range e {
		if i > 0 {
			b.WriteByte(' ')
		}
		switch v {
		case OpH:
			b.WriteByte('H')
		case OpV:
			b.WriteByte('V')
		default:
			b.WriteString(strconv.Itoa(v))
		}
	}
	return b.String()
}

// M1 swaps two adjacent operands (adjacent in operand order, possibly
// separated by operators). It always preserves validity. Returns false
// only for expressions with fewer than two operands.
func (e Expr) M1(rng *rand.Rand) bool {
	idx := e.operandPositions()
	if len(idx) < 2 {
		return false
	}
	i := rng.Intn(len(idx) - 1)
	a, b := idx[i], idx[i+1]
	e[a], e[b] = e[b], e[a]
	return true
}

// M2 complements a random maximal chain of consecutive operators
// (H↔V). It always preserves validity. Returns false when the
// expression has no operators.
func (e Expr) M2(rng *rand.Rand) bool {
	chains := e.operatorChains()
	if len(chains) == 0 {
		return false
	}
	c := chains[rng.Intn(len(chains))]
	for i := c[0]; i < c[1]; i++ {
		if e[i] == OpH {
			e[i] = OpV
		} else {
			e[i] = OpH
		}
	}
	return true
}

// M3 swaps a random adjacent operand-operator pair, keeping only swaps
// that preserve balloting and normality. It tries up to len(e)
// candidate positions; returns false if none is feasible.
func (e Expr) M3(rng *rand.Rand) bool {
	n := len(e)
	if n < 3 {
		return false
	}
	start := rng.Intn(n - 1)
	for t := 0; t < n-1; t++ {
		i := (start + t) % (n - 1)
		a, b := e[i], e[i+1]
		if IsOperator(a) == IsOperator(b) {
			continue
		}
		e[i], e[i+1] = b, a
		if e.valid() {
			return true
		}
		e[i], e[i+1] = a, b
	}
	return false
}

// Perturb applies one randomly chosen move (M1/M2/M3 with equal
// probability), retrying with the other moves if the chosen one is
// infeasible. It panics only for degenerate single-element expressions
// where no move exists.
func (e Expr) Perturb(rng *rand.Rand) {
	order := rng.Perm(3)
	for _, m := range order {
		var ok bool
		switch m {
		case 0:
			ok = e.M1(rng)
		case 1:
			ok = e.M2(rng)
		default:
			ok = e.M3(rng)
		}
		if ok {
			return
		}
	}
	// Single-module floorplans have no moves; treat as a no-op.
}

// operandPositions returns the indices of the operands in order.
func (e Expr) operandPositions() []int {
	idx := make([]int, 0, (len(e)+1)/2)
	for i, v := range e {
		if !IsOperator(v) {
			idx = append(idx, i)
		}
	}
	return idx
}

// operatorChains returns [start, end) ranges of maximal operator runs.
func (e Expr) operatorChains() [][2]int {
	var chains [][2]int
	i := 0
	for i < len(e) {
		if !IsOperator(e[i]) {
			i++
			continue
		}
		j := i
		for j < len(e) && IsOperator(e[j]) {
			j++
		}
		chains = append(chains, [2]int{i, j})
		i = j
	}
	return chains
}
