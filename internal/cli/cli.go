// Package cli unifies process lifecycle across the irgrid commands:
// one exit-code convention, one error formatter, and one
// signal-plus-timeout context so every run-capable command interrupts
// and times out the same way.
package cli

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"irgrid/internal/anneal"
)

// Exit codes shared by the irgrid commands.
const (
	// ExitFailure is any runtime failure without a more specific code.
	ExitFailure = 1
	// ExitUsage reports bad flags or arguments.
	ExitUsage = 2
	// ExitInvalidInput reports a structurally invalid circuit or
	// option set (the library's ErrInvalidInput family).
	ExitInvalidInput = 3
	// ExitDeadline reports an expired -timeout, following the
	// timeout(1) convention.
	ExitDeadline = 124
	// ExitCanceled reports an interrupt (SIGINT/SIGTERM), following
	// the 128+SIGINT shell convention.
	ExitCanceled = 130
)

// ExitCode classifies an error: cancellation and deadline sentinels
// map to their conventional codes, anything matching one of the
// invalid sentinels to ExitInvalidInput, everything else to
// ExitFailure. A nil error is 0.
func ExitCode(err error, invalid ...error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, anneal.ErrDeadline):
		return ExitDeadline
	case errors.Is(err, anneal.ErrCanceled):
		return ExitCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return ExitDeadline
	case errors.Is(err, context.Canceled):
		return ExitCanceled
	}
	for _, s := range invalid {
		if s != nil && errors.Is(err, s) {
			return ExitInvalidInput
		}
	}
	return ExitFailure
}

// Fatalf prints "prog: message" to stderr and exits with code.
func Fatalf(prog string, code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", prog, fmt.Sprintf(format, args...))
	os.Exit(code)
}

// Fatal prints the error and exits with ExitCode(err, invalid...).
func Fatal(prog string, err error, invalid ...error) {
	Fatalf(prog, ExitCode(err, invalid...), "%v", err)
}

// SignalContext returns a context that is canceled on SIGINT or
// SIGTERM and, when timeout > 0, after the timeout expires. The stop
// function releases the signal registration (a second signal then
// kills the process the default way, so a hung run stays killable).
func SignalContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx := context.Background()
	var timeoutCancel context.CancelFunc
	if timeout > 0 {
		ctx, timeoutCancel = context.WithTimeout(ctx, timeout)
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	return ctx, func() {
		stop()
		if timeoutCancel != nil {
			timeoutCancel()
		}
	}
}
