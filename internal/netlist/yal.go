package netlist

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Parser limits. They are far above every real benchmark (ami49 has 49
// modules and 408 nets) and exist to bound memory on hostile or
// corrupted inputs rather than to constrain legitimate ones.
const (
	maxYALModules    = 1 << 16 // 65536
	maxYALNets       = 1 << 20
	maxYALPinsPerNet = 1 << 12 // 4096
	maxYALNameLen    = 1024
)

// This file implements a reader and writer for a YAL-flavoured textual
// interchange format. It is a pragmatic subset of the MCNC "Yet Another
// Language" benchmark format: enough structure to round-trip the data
// the congestion experiments need (module dimensions, pin offsets, net
// connectivity) while remaining hand-editable. Real MCNC YAL files can
// be converted mechanically; the synthetic benchmarks in internal/bench
// are emitted in this format by cmd/benchgen.
//
// Grammar (line oriented, ';' terminated statements, '#' comments):
//
//	CIRCUIT <name>;
//	MODULE <name>;
//	  TYPE GENERAL|PAD;
//	  DIMENSIONS <w> <h>;
//	  IOLIST;
//	    <pinName> <fx> <fy>;   # offsets as fractions of module size
//	  ENDIOLIST;
//	ENDMODULE;
//	NETWORK;
//	  <netName> <module>.<pin> <module>.<pin> ...;
//	ENDNETWORK;

// WriteYAL serialises the circuit to w in the YAL-subset format. Pin
// names are generated as p0, p1, ... per module in net order.
func WriteYAL(w io.Writer, c *Circuit) error {
	if err := c.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# irgrid YAL-subset circuit\n")
	if c.Name != "" {
		// An unnamed circuit writes no CIRCUIT statement at all: the
		// reader treats the statement as optional, and "CIRCUIT ;"
		// would not reparse.
		fmt.Fprintf(bw, "CIRCUIT %s;\n", c.Name)
	}

	// Collect the pins used on each module, in deterministic order.
	type pin struct {
		name   string
		fx, fy float64
	}
	modPins := make([][]pin, len(c.Modules))
	pinName := make(map[PinRef]string)
	for _, n := range c.Nets {
		for _, p := range n.Pins {
			if _, ok := pinName[p]; ok {
				continue
			}
			name := fmt.Sprintf("p%d", len(modPins[p.Module]))
			pinName[p] = name
			modPins[p.Module] = append(modPins[p.Module], pin{name, p.FX, p.FY})
		}
	}

	for i, m := range c.Modules {
		fmt.Fprintf(bw, "MODULE %s;\n", m.Name)
		typ := "GENERAL"
		if m.Pad {
			typ = "PAD"
		}
		fmt.Fprintf(bw, "  TYPE %s;\n", typ)
		fmt.Fprintf(bw, "  DIMENSIONS %g %g;\n", m.W, m.H)
		if m.Soft() {
			fmt.Fprintf(bw, "  ASPECT %g %g;\n", m.MinAspect, m.MaxAspect)
		}
		fmt.Fprintf(bw, "  IOLIST;\n")
		for _, p := range modPins[i] {
			fmt.Fprintf(bw, "    %s %g %g;\n", p.name, p.fx, p.fy)
		}
		fmt.Fprintf(bw, "  ENDIOLIST;\nENDMODULE;\n")
	}

	fmt.Fprintf(bw, "NETWORK;\n")
	for _, n := range c.Nets {
		fmt.Fprintf(bw, "  %s", n.Name)
		for _, p := range n.Pins {
			fmt.Fprintf(bw, " %s.%s", c.Modules[p.Module].Name, pinName[p])
		}
		fmt.Fprintf(bw, ";\n")
	}
	fmt.Fprintf(bw, "ENDNETWORK;\n")
	return bw.Flush()
}

// ReadYAL parses a circuit in the YAL-subset format.
func ReadYAL(r io.Reader) (*Circuit, error) {
	c := &Circuit{}
	type modPin struct{ fx, fy float64 }
	pins := make(map[string]map[string]modPin) // module -> pin -> offsets

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	var curMod *Module
	inIOList, inNetwork := false, false

	fail := func(format string, args ...interface{}) error {
		return fmt.Errorf("netlist: yal line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}
	// parseFinite parses a float and rejects NaN and ±Inf: a module
	// dimension or pin offset that is not a finite number can only
	// poison every downstream computation (NaN compares false with
	// everything, so range checks alone cannot catch it).
	parseFinite := func(what, s string) (float64, error) {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fail("bad %s %q", what, s)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fail("%s %q is not finite", what, s)
		}
		return v, nil
	}
	checkName := func(what, s string) error {
		if len(s) > maxYALNameLen {
			return fail("%s name longer than %d bytes", what, maxYALNameLen)
		}
		return nil
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if !strings.HasSuffix(line, ";") {
			return nil, fail("statement missing ';': %q", line)
		}
		fields := strings.Fields(strings.TrimSuffix(line, ";"))
		if len(fields) == 0 {
			continue
		}
		kw := strings.ToUpper(fields[0])

		switch {
		case inIOList && kw != "ENDIOLIST":
			if len(fields) != 3 {
				return nil, fail("pin wants '<name> <fx> <fy>', got %q", line)
			}
			if err := checkName("pin", fields[0]); err != nil {
				return nil, err
			}
			if _, dup := pins[curMod.Name][fields[0]]; dup {
				return nil, fail("duplicate pin %q on module %q", fields[0], curMod.Name)
			}
			fx, err := parseFinite("pin offset", fields[1])
			if err != nil {
				return nil, err
			}
			fy, err := parseFinite("pin offset", fields[2])
			if err != nil {
				return nil, err
			}
			pins[curMod.Name][fields[0]] = modPin{fx, fy}

		case inNetwork && kw != "ENDNETWORK":
			if len(fields) < 3 {
				return nil, fail("net wants '<name> <mod>.<pin> ...', got %q", line)
			}
			if len(c.Nets) >= maxYALNets {
				return nil, fail("more than %d nets", maxYALNets)
			}
			if len(fields)-1 > maxYALPinsPerNet {
				return nil, fail("net %q has %d pins; limit %d", fields[0], len(fields)-1, maxYALPinsPerNet)
			}
			if err := checkName("net", fields[0]); err != nil {
				return nil, err
			}
			net := Net{Name: fields[0]}
			for _, ref := range fields[1:] {
				dot := strings.LastIndexByte(ref, '.')
				if dot <= 0 || dot == len(ref)-1 {
					return nil, fail("bad pin reference %q", ref)
				}
				modName, pinName := ref[:dot], ref[dot+1:]
				mi := c.ModuleIndex(modName)
				if mi < 0 {
					return nil, fail("net %q references unknown module %q", net.Name, modName)
				}
				mp, ok := pins[modName][pinName]
				if !ok {
					return nil, fail("net %q references unknown pin %q on module %q", net.Name, pinName, modName)
				}
				net.Pins = append(net.Pins, PinRef{Module: mi, FX: mp.fx, FY: mp.fy})
			}
			c.Nets = append(c.Nets, net)

		case kw == "CIRCUIT":
			if len(fields) != 2 {
				return nil, fail("CIRCUIT wants a name")
			}
			c.Name = fields[1]

		case kw == "MODULE":
			if curMod != nil {
				return nil, fail("nested MODULE")
			}
			if len(fields) != 2 {
				return nil, fail("MODULE wants a name")
			}
			if err := checkName("module", fields[1]); err != nil {
				return nil, err
			}
			if len(c.Modules) >= maxYALModules {
				return nil, fail("more than %d modules", maxYALModules)
			}
			if pins[fields[1]] != nil {
				return nil, fail("duplicate module name %q", fields[1])
			}
			curMod = &Module{Name: fields[1]}
			pins[curMod.Name] = make(map[string]modPin)

		case kw == "TYPE":
			if curMod == nil {
				return nil, fail("TYPE outside MODULE")
			}
			if len(fields) != 2 {
				return nil, fail("TYPE wants one argument")
			}
			switch strings.ToUpper(fields[1]) {
			case "GENERAL":
				curMod.Pad = false
			case "PAD":
				curMod.Pad = true
			default:
				return nil, fail("unknown module type %q", fields[1])
			}

		case kw == "DIMENSIONS":
			if curMod == nil {
				return nil, fail("DIMENSIONS outside MODULE")
			}
			if len(fields) != 3 {
				return nil, fail("DIMENSIONS wants '<w> <h>'")
			}
			w, err := parseFinite("width", fields[1])
			if err != nil {
				return nil, err
			}
			h, err := parseFinite("height", fields[2])
			if err != nil {
				return nil, err
			}
			curMod.W, curMod.H = w, h

		case kw == "ASPECT":
			if curMod == nil {
				return nil, fail("ASPECT outside MODULE")
			}
			if len(fields) != 3 {
				return nil, fail("ASPECT wants '<min> <max>'")
			}
			lo, err := parseFinite("aspect bound", fields[1])
			if err != nil {
				return nil, err
			}
			hi, err := parseFinite("aspect bound", fields[2])
			if err != nil {
				return nil, err
			}
			curMod.MinAspect, curMod.MaxAspect = lo, hi

		case kw == "IOLIST":
			if curMod == nil {
				return nil, fail("IOLIST outside MODULE")
			}
			inIOList = true

		case kw == "ENDIOLIST":
			inIOList = false

		case kw == "ENDMODULE":
			if curMod == nil {
				return nil, fail("ENDMODULE without MODULE")
			}
			c.Modules = append(c.Modules, *curMod)
			curMod = nil

		case kw == "NETWORK":
			inNetwork = true

		case kw == "ENDNETWORK":
			inNetwork = false

		default:
			return nil, fail("unknown statement %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netlist: yal read: %w", err)
	}
	if curMod != nil {
		return nil, fmt.Errorf("netlist: yal: unterminated MODULE %q", curMod.Name)
	}
	if inNetwork {
		return nil, fmt.Errorf("netlist: yal: unterminated NETWORK")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// SortNetsByName orders nets lexicographically; used to make
// round-tripped circuits comparable.
func (c *Circuit) SortNetsByName() {
	sort.Slice(c.Nets, func(i, j int) bool { return c.Nets[i].Name < c.Nets[j].Name })
}
