package netlist

import (
	"testing"

	"irgrid/internal/geom"
)

func sample() *Circuit {
	return &Circuit{
		Name: "sample",
		Modules: []Module{
			{Name: "a", W: 100, H: 200},
			{Name: "b", W: 50, H: 50},
			{Name: "io", W: 10, H: 10, Pad: true},
		},
		Nets: []Net{
			{Name: "n1", Pins: []PinRef{{Module: 0, FX: 0.5, FY: 0.5}, {Module: 1, FX: 0, FY: 1}}},
			{Name: "n2", Pins: []PinRef{{Module: 1, FX: 1, FY: 0.2}, {Module: 2, FX: 0.5, FY: 0.5}, {Module: 0, FX: 0, FY: 0}}},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Circuit)
	}{
		{"no modules", func(c *Circuit) { c.Modules = nil }},
		{"empty name", func(c *Circuit) { c.Modules[0].Name = "" }},
		{"dup name", func(c *Circuit) { c.Modules[1].Name = "a" }},
		{"zero width", func(c *Circuit) { c.Modules[0].W = 0 }},
		{"negative height", func(c *Circuit) { c.Modules[0].H = -3 }},
		{"one-pin net", func(c *Circuit) { c.Nets[0].Pins = c.Nets[0].Pins[:1] }},
		{"bad module ref", func(c *Circuit) { c.Nets[0].Pins[0].Module = 9 }},
		{"offset out of range", func(c *Circuit) { c.Nets[0].Pins[0].FX = 1.5 }},
	}
	for _, tc := range cases {
		c := sample()
		tc.mutate(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestTotalsAndLookups(t *testing.T) {
	c := sample()
	if got := c.TotalModuleArea(); got != 100*200+50*50+100 {
		t.Errorf("TotalModuleArea = %g", got)
	}
	if got := c.PinCount(); got != 5 {
		t.Errorf("PinCount = %d", got)
	}
	if c.ModuleIndex("b") != 1 || c.ModuleIndex("zzz") != -1 {
		t.Error("ModuleIndex broken")
	}
	if c.Nets[1].Degree() != 3 {
		t.Error("Degree broken")
	}
}

func TestPinPosition(t *testing.T) {
	pl := &Placement{
		Rects:   []geom.Rect{{X1: 10, Y1: 20, X2: 110, Y2: 220}},
		Rotated: []bool{false},
	}
	p := pl.PinPosition(PinRef{Module: 0, FX: 0.5, FY: 0.25})
	if p != (geom.Pt{X: 60, Y: 70}) {
		t.Errorf("PinPosition = %v", p)
	}
}

func TestPinPositionRotated(t *testing.T) {
	// A 100x200 module rotated occupies 200x100. (fx,fy) → (fy,1-fx).
	pl := &Placement{
		Rects:   []geom.Rect{{X1: 0, Y1: 0, X2: 200, Y2: 100}},
		Rotated: []bool{true},
	}
	// Corner (1,0) (lower-right pre-rotation) → (0,0) lower-left.
	if p := pl.PinPosition(PinRef{Module: 0, FX: 1, FY: 0}); p != (geom.Pt{X: 0, Y: 0}) {
		t.Errorf("corner = %v", p)
	}
	// Corner (0,0) → (0,1): upper-left.
	if p := pl.PinPosition(PinRef{Module: 0, FX: 0, FY: 0}); p != (geom.Pt{X: 0, Y: 100}) {
		t.Errorf("corner = %v", p)
	}
}

func TestTwoPinRangeAndType(t *testing.T) {
	// Type I: second pin upper-right.
	n := TwoPin{A: geom.Pt{X: 0, Y: 0}, B: geom.Pt{X: 10, Y: 20}}
	if n.TypeII() {
		t.Error("up-right net misclassified as type II")
	}
	if n.Range() != (geom.Rect{X1: 0, Y1: 0, X2: 10, Y2: 20}) {
		t.Errorf("Range = %v", n.Range())
	}
	if n.Manhattan() != 30 {
		t.Errorf("Manhattan = %g", n.Manhattan())
	}
	// Type II: left pin above right pin; orientation must not depend on
	// pin order.
	m := TwoPin{A: geom.Pt{X: 0, Y: 20}, B: geom.Pt{X: 10, Y: 0}}
	if !m.TypeII() {
		t.Error("down-right net not classified as type II")
	}
	mSwap := TwoPin{A: m.B, B: m.A}
	if !mSwap.TypeII() {
		t.Error("TypeII must be symmetric in pin order")
	}
	// Degenerate nets are reported type I.
	for _, d := range []TwoPin{
		{A: geom.Pt{X: 0, Y: 0}, B: geom.Pt{X: 10, Y: 0}},
		{A: geom.Pt{X: 0, Y: 0}, B: geom.Pt{X: 0, Y: 10}},
		{A: geom.Pt{X: 3, Y: 3}, B: geom.Pt{X: 3, Y: 3}},
	} {
		if d.TypeII() {
			t.Errorf("degenerate net %v classified type II", d)
		}
	}
}
