package netlist

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzYALParse throws arbitrary bytes at the YAL reader. The parser
// must never panic or hang, and anything it accepts must satisfy
// Validate and survive a write→reparse round trip with identical
// structure (the parser and writer agreeing on the grammar is what
// keeps checkpointed/benchgen'd circuits loadable).
func FuzzYALParse(f *testing.F) {
	seed := `# irgrid YAL-subset circuit
CIRCUIT fuzz;
MODULE a;
  TYPE GENERAL;
  DIMENSIONS 30 20;
  IOLIST;
    p0 0.5 0.5;
  ENDIOLIST;
ENDMODULE;
MODULE b;
  TYPE PAD;
  DIMENSIONS 10 10;
  IOLIST;
    p0 0 1;
  ENDIOLIST;
ENDMODULE;
NETWORK;
  n1 a.p0 b.p0;
ENDNETWORK;
`
	f.Add(seed)
	f.Add("CIRCUIT x;\n")
	f.Add("MODULE m;\nDIMENSIONS NaN 5;\nENDMODULE;\n")
	f.Add("MODULE m;\nDIMENSIONS Inf 5;\nENDMODULE;\n")
	f.Add("MODULE m;\nENDMODULE;\nMODULE m;\nENDMODULE;\n")
	f.Add("MODULE m;\nIOLIST;\np0 0 0;\np0 1 1;\nENDIOLIST;\nENDMODULE;\n")
	f.Add(strings.Repeat("MODULE x;\nDIMENSIONS 1 1;\nENDMODULE;\n", 3))

	f.Fuzz(func(t *testing.T, input string) {
		c, err := ReadYAL(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics and hangs are not
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("accepted circuit fails Validate: %v", verr)
		}
		var buf bytes.Buffer
		if werr := WriteYAL(&buf, c); werr != nil {
			t.Fatalf("accepted circuit fails WriteYAL: %v", werr)
		}
		c2, rerr := ReadYAL(bytes.NewReader(buf.Bytes()))
		if rerr != nil {
			t.Fatalf("round trip fails to reparse: %v\n%s", rerr, buf.String())
		}
		if c2.Name != c.Name || len(c2.Modules) != len(c.Modules) || len(c2.Nets) != len(c.Nets) {
			t.Fatalf("round trip changed shape: %s/%d/%d -> %s/%d/%d",
				c.Name, len(c.Modules), len(c.Nets), c2.Name, len(c2.Modules), len(c2.Nets))
		}
		for i := range c.Modules {
			if c.Modules[i] != c2.Modules[i] {
				t.Fatalf("round trip changed module %d: %+v -> %+v", i, c.Modules[i], c2.Modules[i])
			}
		}
		for i := range c.Nets {
			if c.Nets[i].Name != c2.Nets[i].Name || len(c.Nets[i].Pins) != len(c2.Nets[i].Pins) {
				t.Fatalf("round trip changed net %d", i)
			}
			for j, p := range c.Nets[i].Pins {
				if p != c2.Nets[i].Pins[j] {
					t.Fatalf("round trip changed net %d pin %d: %+v -> %+v", i, j, p, c2.Nets[i].Pins[j])
				}
			}
		}
	})
}
