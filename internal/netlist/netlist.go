// Package netlist models the circuits a floorplanner consumes: hard
// rectangular modules, their pins, and the (multi-pin) nets connecting
// them. It also provides a reader and writer for a YAL-flavoured
// interchange format so that real MCNC benchmark data can be dropped in
// when available (see internal/bench for the synthetic equivalents used
// by the experiments).
package netlist

import (
	"fmt"
	"math"

	"irgrid/internal/geom"
)

// Module is a rectangular block. W and H are the unrotated dimensions
// in µm. A module with MinAspect < MaxAspect is soft: the packer may
// realize it as any rectangle of the same area whose aspect ratio
// (width/height) lies in [MinAspect, MaxAspect].
type Module struct {
	Name string
	W, H float64
	// Pad marks an I/O pad: pads keep their aspect and are excluded
	// from rotation during floorplanning.
	Pad bool
	// MinAspect and MaxAspect bound a soft module's width/height ratio.
	// Both zero (the default) makes the module hard.
	MinAspect, MaxAspect float64
}

// Area returns the module area in µm².
func (m Module) Area() float64 { return m.W * m.H }

// Soft reports whether the module has a free aspect ratio.
func (m Module) Soft() bool { return m.MinAspect > 0 && m.MaxAspect > m.MinAspect }

// PinRef identifies one terminal of a net: a module and the pin's
// offset inside it, expressed as fractions of the module's width and
// height so the offset survives rotation and resizing.
type PinRef struct {
	Module int     // index into Circuit.Modules
	FX, FY float64 // offset fractions in [0, 1]
}

// Net is a named multi-pin net.
type Net struct {
	Name string
	Pins []PinRef
}

// Degree returns the number of pins on the net.
func (n Net) Degree() int { return len(n.Pins) }

// Circuit is a complete floorplanning instance.
type Circuit struct {
	Name    string
	Modules []Module
	Nets    []Net
}

// TotalModuleArea returns the sum of all module areas in µm².
func (c *Circuit) TotalModuleArea() float64 {
	var a float64
	for _, m := range c.Modules {
		a += m.Area()
	}
	return a
}

// PinCount returns the total number of net terminals.
func (c *Circuit) PinCount() int {
	var p int
	for _, n := range c.Nets {
		p += len(n.Pins)
	}
	return p
}

// finite reports whether every value is a finite number. Range checks
// alone cannot reject NaN (it compares false with everything), so
// Validate tests finiteness explicitly.
func finite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Validate checks structural consistency: non-empty, positive and
// finite module dimensions, in-range pin references, nets with at
// least two pins and pin offsets inside their modules.
func (c *Circuit) Validate() error {
	if len(c.Modules) == 0 {
		return fmt.Errorf("netlist: circuit %q has no modules", c.Name)
	}
	seen := make(map[string]bool, len(c.Modules))
	for i, m := range c.Modules {
		if m.Name == "" {
			return fmt.Errorf("netlist: module %d has empty name", i)
		}
		if seen[m.Name] {
			return fmt.Errorf("netlist: duplicate module name %q", m.Name)
		}
		seen[m.Name] = true
		if !finite(m.W, m.H) || m.W <= 0 || m.H <= 0 {
			return fmt.Errorf("netlist: module %q has invalid dimensions %gx%g", m.Name, m.W, m.H)
		}
		if !finite(m.MinAspect, m.MaxAspect) || m.MinAspect < 0 || m.MaxAspect < 0 || (m.MaxAspect != 0 && m.MaxAspect < m.MinAspect) {
			return fmt.Errorf("netlist: module %q has invalid aspect range [%g, %g]", m.Name, m.MinAspect, m.MaxAspect)
		}
		if m.Soft() && m.Pad {
			return fmt.Errorf("netlist: module %q cannot be both a pad and soft", m.Name)
		}
	}
	for _, n := range c.Nets {
		if len(n.Pins) < 2 {
			return fmt.Errorf("netlist: net %q has %d pin(s); need at least 2", n.Name, len(n.Pins))
		}
		for _, p := range n.Pins {
			if p.Module < 0 || p.Module >= len(c.Modules) {
				return fmt.Errorf("netlist: net %q references module %d of %d", n.Name, p.Module, len(c.Modules))
			}
			if !finite(p.FX, p.FY) || p.FX < 0 || p.FX > 1 || p.FY < 0 || p.FY > 1 {
				return fmt.Errorf("netlist: net %q pin offset (%g,%g) outside [0,1]", n.Name, p.FX, p.FY)
			}
		}
	}
	return nil
}

// ModuleIndex returns the index of the named module, or -1.
func (c *Circuit) ModuleIndex(name string) int {
	for i, m := range c.Modules {
		if m.Name == name {
			return i
		}
	}
	return -1
}

// Placement assigns every module an absolute rectangle (and records
// whether it was rotated 90°). It is the output of the packer and the
// input to pin placement and congestion estimation.
type Placement struct {
	Rects   []geom.Rect
	Rotated []bool
	Chip    geom.Rect // bounding box of all module rects
}

// PinPosition returns the absolute position of pin p under the
// placement, honouring rotation: a rotated module maps the fractional
// offset (fx, fy) to (fy, 1-fx) in placed coordinates (a 90°
// counter-clockwise rotation of the cell).
func (pl *Placement) PinPosition(p PinRef) geom.Pt {
	r := pl.Rects[p.Module]
	fx, fy := p.FX, p.FY
	if pl.Rotated[p.Module] {
		fx, fy = p.FY, 1-p.FX
	}
	return geom.Pt{X: r.X1 + fx*r.W(), Y: r.Y1 + fy*r.H()}
}

// TwoPin is a decomposed two-terminal net, the unit the probabilistic
// congestion models operate on. A and B are absolute pin positions.
type TwoPin struct {
	A, B geom.Pt
}

// Range returns the net's routing range: the bounding rectangle of its
// pins, which contains every multi-bend shortest Manhattan route.
func (t TwoPin) Range() geom.Rect { return geom.RectFromCorners(t.A, t.B) }

// Manhattan returns the net length under shortest Manhattan routing.
func (t TwoPin) Manhattan() float64 { return t.A.Manhattan(t.B) }

// TypeII reports whether the net is a type II net in the paper's
// classification: one pin is upper-left of the other. Degenerate nets
// (pins sharing a row or column) are reported as type I; the models
// treat them specially anyway.
func (t TwoPin) TypeII() bool {
	a, b := t.A, t.B
	if a.X > b.X {
		a, b = b, a
	}
	return b.Y < a.Y
}
