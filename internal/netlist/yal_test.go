package netlist

import (
	"bytes"
	"strings"
	"testing"
)

func TestYALRoundTrip(t *testing.T) {
	c := sample()
	var buf bytes.Buffer
	if err := WriteYAL(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadYAL(&buf)
	if err != nil {
		t.Fatalf("ReadYAL: %v\n%s", err, buf.String())
	}
	if got.Name != c.Name {
		t.Errorf("name = %q", got.Name)
	}
	if len(got.Modules) != len(c.Modules) {
		t.Fatalf("modules = %d", len(got.Modules))
	}
	for i := range c.Modules {
		if got.Modules[i] != c.Modules[i] {
			t.Errorf("module %d = %+v, want %+v", i, got.Modules[i], c.Modules[i])
		}
	}
	if len(got.Nets) != len(c.Nets) {
		t.Fatalf("nets = %d", len(got.Nets))
	}
	for i := range c.Nets {
		if got.Nets[i].Name != c.Nets[i].Name || len(got.Nets[i].Pins) != len(c.Nets[i].Pins) {
			t.Fatalf("net %d mismatch", i)
		}
		for j := range c.Nets[i].Pins {
			if got.Nets[i].Pins[j] != c.Nets[i].Pins[j] {
				t.Errorf("net %d pin %d = %+v, want %+v", i, j, got.Nets[i].Pins[j], c.Nets[i].Pins[j])
			}
		}
	}
}

func TestReadYALHandwritten(t *testing.T) {
	src := `
# a hand-written circuit
CIRCUIT tiny;
MODULE alpha;
  TYPE GENERAL;
  DIMENSIONS 120 80;
  IOLIST;
    in0 0 0.5;
    out0 1 0.5;
  ENDIOLIST;
ENDMODULE;
MODULE beta;
  TYPE PAD;
  DIMENSIONS 10 10;
  IOLIST;
    p 0.5 0.5;
  ENDIOLIST;
ENDMODULE;
NETWORK;
  clk alpha.out0 beta.p;
ENDNETWORK;
`
	c, err := ReadYAL(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "tiny" || len(c.Modules) != 2 || len(c.Nets) != 1 {
		t.Fatalf("parsed %+v", c)
	}
	if !c.Modules[1].Pad {
		t.Error("beta should be a pad")
	}
	if c.Nets[0].Pins[0] != (PinRef{Module: 0, FX: 1, FY: 0.5}) {
		t.Errorf("pin = %+v", c.Nets[0].Pins[0])
	}
}

func TestReadYALErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"missing semicolon", "CIRCUIT x\n"},
		{"unknown statement", "FROB x;\n"},
		{"nested module", "MODULE a;\nMODULE b;\n"},
		{"type outside module", "TYPE GENERAL;\n"},
		{"bad type", "MODULE a;\nTYPE WEIRD;\n"},
		{"bad dimensions", "MODULE a;\nDIMENSIONS x y;\n"},
		{"dimensions outside", "DIMENSIONS 1 2;\n"},
		{"unterminated module", "MODULE a;\nTYPE GENERAL;\n"},
		{"unknown module in net", "MODULE a;\nDIMENSIONS 1 2;\nIOLIST;\np 0 0;\nENDIOLIST;\nENDMODULE;\nNETWORK;\nn1 zz.p a.p;\nENDNETWORK;\n"},
		{"unknown pin in net", "MODULE a;\nDIMENSIONS 1 2;\nIOLIST;\np 0 0;\nENDIOLIST;\nENDMODULE;\nNETWORK;\nn1 a.q a.p;\nENDNETWORK;\n"},
		{"bad pin ref", "MODULE a;\nDIMENSIONS 1 2;\nIOLIST;\np 0 0;\nENDIOLIST;\nENDMODULE;\nNETWORK;\nn1 ap a.p;\nENDNETWORK;\n"},
		{"unterminated network", "MODULE a;\nDIMENSIONS 1 2;\nIOLIST;\np 0 0;\nENDIOLIST;\nENDMODULE;\nNETWORK;\n"},
		{"one-pin net fails validation", "MODULE a;\nDIMENSIONS 1 2;\nIOLIST;\np 0 0;\nENDIOLIST;\nENDMODULE;\nNETWORK;\nn1 a.p;\nENDNETWORK;\n"},
	}
	for _, tc := range cases {
		if _, err := ReadYAL(strings.NewReader(tc.src)); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestWriteYALRejectsInvalid(t *testing.T) {
	c := sample()
	c.Modules[0].W = -1
	var buf bytes.Buffer
	if err := WriteYAL(&buf, c); err == nil {
		t.Error("expected error for invalid circuit")
	}
}

func TestYALCommentsAndBlankLines(t *testing.T) {
	src := "# leading comment\n\nCIRCUIT c; # trailing comment\nMODULE m;\nDIMENSIONS 5 5;\nIOLIST;\na 0 0;\nb 1 1;\nENDIOLIST;\nENDMODULE;\nNETWORK;\nn m.a m.b;\nENDNETWORK;\n"
	c, err := ReadYAL(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "c" || len(c.Nets) != 1 {
		t.Fatalf("parsed %+v", c)
	}
}

func TestSortNetsByName(t *testing.T) {
	c := sample()
	c.Nets[0].Name, c.Nets[1].Name = "zz", "aa"
	c.SortNetsByName()
	if c.Nets[0].Name != "aa" {
		t.Error("not sorted")
	}
}
