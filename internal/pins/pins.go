// Package pins implements the intersection-to-intersection method used
// by the paper (after Sham & Young [4]) to locate pins: once module
// positions are known, every pin is snapped to the nearest intersection
// of the base routing grid. Snapped pins guarantee that routing-range
// boundaries — and therefore the cutting lines of the Irregular-Grid —
// coincide with grid intersections, and that every net crosses whole
// IR-grids ("the pins must be right on the cutting-lines", §4.2).
package pins

import (
	"math"

	"irgrid/internal/geom"
)

// Snapper snaps points to the intersections of a uniform grid anchored
// at Origin with the given Pitch.
type Snapper struct {
	Origin geom.Pt
	Pitch  float64
}

// New returns a Snapper for the chip's base grid. Pitch must be
// positive.
func New(chip geom.Rect, pitch float64) Snapper {
	if pitch <= 0 {
		panic("pins: pitch must be positive")
	}
	return Snapper{Origin: geom.Pt{X: chip.X1, Y: chip.Y1}, Pitch: pitch}
}

// Snap returns the grid intersection nearest to p.
func (s Snapper) Snap(p geom.Pt) geom.Pt {
	return geom.Pt{
		X: s.Origin.X + math.Round((p.X-s.Origin.X)/s.Pitch)*s.Pitch,
		Y: s.Origin.Y + math.Round((p.Y-s.Origin.Y)/s.Pitch)*s.Pitch,
	}
}

// SnapClamped snaps p and then clamps the result into the chip, so
// pins on modules at the chip boundary never land outside it.
func (s Snapper) SnapClamped(p geom.Pt, chip geom.Rect) geom.Pt {
	q := s.Snap(p)
	q.X = math.Min(math.Max(q.X, chip.X1), chip.X2)
	q.Y = math.Min(math.Max(q.Y, chip.Y1), chip.Y2)
	return q
}

// CellIndex returns the integer grid-cell coordinates of the cell whose
// lower-left intersection is the snap of p. Two pins snapped to the
// same intersection share an index, which the congestion models use to
// detect point routing ranges.
func (s Snapper) CellIndex(p geom.Pt) (ix, iy int) {
	q := s.Snap(p)
	return int(math.Round((q.X - s.Origin.X) / s.Pitch)),
		int(math.Round((q.Y - s.Origin.Y) / s.Pitch))
}
