package pins

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"irgrid/internal/geom"
)

var chip = geom.Rect{X1: 0, Y1: 0, X2: 300, Y2: 210}

func TestSnapBasics(t *testing.T) {
	s := New(chip, 30)
	cases := []struct {
		in, want geom.Pt
	}{
		{geom.Pt{X: 0, Y: 0}, geom.Pt{X: 0, Y: 0}},
		{geom.Pt{X: 14, Y: 14}, geom.Pt{X: 0, Y: 0}},
		{geom.Pt{X: 16, Y: 16}, geom.Pt{X: 30, Y: 30}},
		{geom.Pt{X: 45, Y: 75}, geom.Pt{X: 60, Y: 90}}, // .5 rounds away from zero
		{geom.Pt{X: 299, Y: 209}, geom.Pt{X: 300, Y: 210}},
	}
	for _, c := range cases {
		if got := s.Snap(c.in); got != c.want {
			t.Errorf("Snap(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSnapNonZeroOrigin(t *testing.T) {
	c2 := geom.Rect{X1: 7, Y1: 11, X2: 107, Y2: 111}
	s := New(c2, 10)
	got := s.Snap(geom.Pt{X: 20, Y: 20})
	// Nearest intersections are 7+10k, 11+10k: (17, 21).
	if got != (geom.Pt{X: 17, Y: 21}) {
		t.Errorf("Snap = %v", got)
	}
}

func TestSnapClamped(t *testing.T) {
	s := New(chip, 30)
	got := s.SnapClamped(geom.Pt{X: 299, Y: 209}, chip)
	if got != (geom.Pt{X: 300, Y: 210}) {
		t.Errorf("got %v", got)
	}
	// A point outside the chip clamps back in.
	got = s.SnapClamped(geom.Pt{X: 400, Y: -5}, chip)
	if got != (geom.Pt{X: 300, Y: 0}) {
		t.Errorf("got %v", got)
	}
}

func TestCellIndex(t *testing.T) {
	s := New(chip, 30)
	ix, iy := s.CellIndex(geom.Pt{X: 61, Y: 89})
	if ix != 2 || iy != 3 {
		t.Errorf("CellIndex = %d,%d", ix, iy)
	}
	ix, iy = s.CellIndex(geom.Pt{X: 0, Y: 0})
	if ix != 0 || iy != 0 {
		t.Errorf("CellIndex origin = %d,%d", ix, iy)
	}
}

func TestSnapIdempotent(t *testing.T) {
	s := New(chip, 30)
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.Abs(x) > 1e7 || math.Abs(y) > 1e7 {
			return true
		}
		p := s.Snap(geom.Pt{X: x, Y: y})
		return s.Snap(p) == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSnapDistanceBound(t *testing.T) {
	s := New(chip, 30)
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 1000; i++ {
		p := geom.Pt{X: rng.Float64() * 300, Y: rng.Float64() * 210}
		q := s.Snap(p)
		if math.Abs(q.X-p.X) > 15+1e-9 || math.Abs(q.Y-p.Y) > 15+1e-9 {
			t.Fatalf("Snap(%v) = %v moved more than pitch/2", p, q)
		}
	}
}

func TestSnapOnIntersection(t *testing.T) {
	s := New(chip, 30)
	// Snapped points lie exactly on pitch multiples.
	rng := rand.New(rand.NewSource(37))
	for i := 0; i < 1000; i++ {
		p := geom.Pt{X: rng.Float64() * 300, Y: rng.Float64() * 210}
		q := s.Snap(p)
		if math.Mod(q.X, 30) != 0 || math.Mod(q.Y, 30) != 0 {
			t.Fatalf("Snap(%v) = %v not on intersection", p, q)
		}
	}
}

func TestNewPanicsOnBadPitch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(chip, 0)
}
