// Package route implements a capacity-aware grid global router. It
// plays two roles in the reproduction:
//
//  1. It is the "global router based" congestion-model family from the
//     paper's taxonomy (§1, citing Wang & Sarrafzadeh, ASP-DAC'00):
//     route the nets on a coarse grid and read congestion off the edge
//     utilizations (see internal/baseline).
//  2. It provides post-routing ground truth for validating the
//     probabilistic models: actual edge overflow after routing is what
//     the estimators try to predict (the validation experiment in
//     internal/exp).
//
// The router models the chip as a 2-D array of tiles; adjacent tiles
// are joined by edges with a fixed track capacity. Each 2-pin net is
// routed by congestion-aware Dijkstra search (history + present cost,
// PathFinder-style), and a bounded rip-up-and-reroute loop renegotiates
// overflowing edges.
package route

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"irgrid/internal/geom"
	"irgrid/internal/netlist"
)

// Config parameterizes the router.
type Config struct {
	// Pitch is the tile size in µm (tiles are Pitch×Pitch squares).
	Pitch float64
	// Capacity is the number of tracks per tile edge (default 8).
	Capacity int
	// MaxIterations bounds the rip-up-and-reroute negotiation loop
	// (default 8; 1 = route once, no renegotiation).
	MaxIterations int
	// HistoryWeight scales the accumulated-overflow history cost
	// (default 1.0).
	HistoryWeight float64
	// Monotone restricts every route to monotone (shortest Manhattan)
	// paths inside the net's bounding box, matching the probabilistic
	// models' routing assumption. When false, routes may detour
	// anywhere on the chip.
	Monotone bool
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 8
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 8
	}
	if c.HistoryWeight <= 0 {
		c.HistoryWeight = 1
	}
	return c
}

// Grid is the routing graph: Cols×Rows tiles with horizontal edges
// (between x and x+1) and vertical edges (between y and y+1).
type Grid struct {
	Chip       geom.Rect
	Pitch      float64
	Cols, Rows int
	Capacity   int

	// usageH[y*(Cols-1)+x] is the number of nets on the edge between
	// tile (x,y) and (x+1,y); usageV[y*Cols+x] between (x,y) and
	// (x,y+1).
	usageH []int
	usageV []int
	// historyH/V accumulate past overflow for negotiated congestion.
	historyH []float64
	historyV []float64
}

// NewGrid builds an empty routing grid over the chip.
func NewGrid(chip geom.Rect, pitch float64, capacity int) *Grid {
	if pitch <= 0 {
		panic("route: pitch must be positive")
	}
	cols := int(math.Ceil(chip.W() / pitch))
	rows := int(math.Ceil(chip.H() / pitch))
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return &Grid{
		Chip: chip, Pitch: pitch, Cols: cols, Rows: rows, Capacity: capacity,
		usageH:   make([]int, (cols-1)*rows),
		usageV:   make([]int, cols*(rows-1)),
		historyH: make([]float64, (cols-1)*rows),
		historyV: make([]float64, cols*(rows-1)),
	}
}

// Tile returns the tile coordinates of point p, clamped to the grid.
func (g *Grid) Tile(p geom.Pt) (int, int) {
	x := int((p.X - g.Chip.X1) / g.Pitch)
	y := int((p.Y - g.Chip.Y1) / g.Pitch)
	if x < 0 {
		x = 0
	}
	if x >= g.Cols {
		x = g.Cols - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= g.Rows {
		y = g.Rows - 1
	}
	return x, y
}

// hIndex addresses the horizontal edge leaving tile (x,y) rightwards.
func (g *Grid) hIndex(x, y int) int { return y*(g.Cols-1) + x }

// vIndex addresses the vertical edge leaving tile (x,y) upwards.
func (g *Grid) vIndex(x, y int) int { return y*g.Cols + x }

// UsageH returns the usage of the horizontal edge (x,y)-(x+1,y).
func (g *Grid) UsageH(x, y int) int { return g.usageH[g.hIndex(x, y)] }

// UsageV returns the usage of the vertical edge (x,y)-(x,y+1).
func (g *Grid) UsageV(x, y int) int { return g.usageV[g.vIndex(x, y)] }

// Overflow returns the total overflow (usage beyond capacity summed
// over all edges) and the worst single-edge overflow.
func (g *Grid) Overflow() (total, max int) {
	for _, u := range g.usageH {
		if o := u - g.Capacity; o > 0 {
			total += o
			if o > max {
				max = o
			}
		}
	}
	for _, u := range g.usageV {
		if o := u - g.Capacity; o > 0 {
			total += o
			if o > max {
				max = o
			}
		}
	}
	return total, max
}

// EdgeUtilizations returns every edge's usage/capacity ratio, the raw
// signal the router-based congestion estimator aggregates.
func (g *Grid) EdgeUtilizations() []float64 {
	out := make([]float64, 0, len(g.usageH)+len(g.usageV))
	for _, u := range g.usageH {
		out = append(out, float64(u)/float64(g.Capacity))
	}
	for _, u := range g.usageV {
		out = append(out, float64(u)/float64(g.Capacity))
	}
	return out
}

// Route is one net's realized path: a sequence of tile coordinates.
type Route struct {
	Net   int // index into the input net slice
	Tiles [][2]int
}

// Wirelength returns the route length in µm (tile steps × pitch).
func (r Route) Wirelength(pitch float64) float64 {
	if len(r.Tiles) == 0 {
		return 0
	}
	return float64(len(r.Tiles)-1) * pitch
}

// Result is the outcome of routing a net set.
type Result struct {
	Grid       *Grid
	Routes     []Route
	Overflow   int // total edge overflow after the final iteration
	MaxOver    int // worst single-edge overflow
	Iterations int // negotiation iterations executed
	Failed     int // nets with no legal path (never happens on a connected grid)
}

// Router routes 2-pin nets on a grid.
type Router struct {
	cfg Config
}

// New returns a Router with the given configuration.
func New(cfg Config) *Router {
	return &Router{cfg: cfg.withDefaults()}
}

// RouteNets routes all nets over the chip and returns the final grid
// state, per-net routes and overflow metrics. Nets are initially
// ordered by half-perimeter (short first — they have the least routing
// freedom per the monotone assumption); subsequent negotiation
// iterations re-route every net against history costs.
func (r *Router) RouteNets(chip geom.Rect, nets []netlist.TwoPin) (*Result, error) {
	if r.cfg.Pitch <= 0 {
		return nil, fmt.Errorf("route: pitch must be positive, got %g", r.cfg.Pitch)
	}
	g := NewGrid(chip, r.cfg.Pitch, r.cfg.Capacity)
	res := &Result{Grid: g, Routes: make([]Route, len(nets))}

	order := make([]int, len(nets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return nets[order[a]].Manhattan() < nets[order[b]].Manhattan()
	})

	for iter := 0; iter < r.cfg.MaxIterations; iter++ {
		res.Iterations = iter + 1
		for _, ni := range order {
			// Rip up the previous route (no-op in iteration 0).
			r.ripUp(g, res.Routes[ni])
			rt := r.routeOne(g, nets[ni])
			rt.Net = ni
			res.Routes[ni] = rt
			r.commit(g, rt)
		}
		total, max := g.Overflow()
		res.Overflow, res.MaxOver = total, max
		if total == 0 {
			break
		}
		// Accumulate history on overflowing edges for the next round.
		for i, u := range g.usageH {
			if u > g.Capacity {
				g.historyH[i] += float64(u - g.Capacity)
			}
		}
		for i, u := range g.usageV {
			if u > g.Capacity {
				g.historyV[i] += float64(u - g.Capacity)
			}
		}
	}
	return res, nil
}

func (r *Router) ripUp(g *Grid, rt Route) {
	for i := 1; i < len(rt.Tiles); i++ {
		a, b := rt.Tiles[i-1], rt.Tiles[i]
		switch {
		case a[0] != b[0]: // horizontal step
			x := minInt(a[0], b[0])
			g.usageH[g.hIndex(x, a[1])]--
		default: // vertical step
			y := minInt(a[1], b[1])
			g.usageV[g.vIndex(a[0], y)]--
		}
	}
}

func (r *Router) commit(g *Grid, rt Route) {
	for i := 1; i < len(rt.Tiles); i++ {
		a, b := rt.Tiles[i-1], rt.Tiles[i]
		switch {
		case a[0] != b[0]:
			x := minInt(a[0], b[0])
			g.usageH[g.hIndex(x, a[1])]++
		default:
			y := minInt(a[1], b[1])
			g.usageV[g.vIndex(a[0], y)]++
		}
	}
}

// edgeCost is the negotiated cost of adding one net to an edge with
// the given usage and history.
func (r *Router) edgeCost(usage int, history float64, capacity int) float64 {
	cost := 1.0
	if usage >= capacity {
		// Quadratic present-congestion penalty pushes nets off full
		// edges without making them strictly illegal.
		over := float64(usage-capacity) + 1
		cost += over * over * 4
	}
	return cost + r.cfg.HistoryWeight*history
}

// routeOne finds a minimum-negotiated-cost path for the net.
func (r *Router) routeOne(g *Grid, n netlist.TwoPin) Route {
	sx, sy := g.Tile(n.A)
	tx, ty := g.Tile(n.B)
	if sx == tx && sy == ty {
		return Route{Tiles: [][2]int{{sx, sy}}}
	}

	// Search window: the net's bounding box for monotone mode, the
	// whole grid otherwise.
	loX, hiX, loY, hiY := 0, g.Cols-1, 0, g.Rows-1
	if r.cfg.Monotone {
		loX, hiX = minInt(sx, tx), maxInt(sx, tx)
		loY, hiY = minInt(sy, ty), maxInt(sy, ty)
	}

	w := hiX - loX + 1
	h := hiY - loY + 1
	idx := func(x, y int) int { return (y-loY)*w + (x - loX) }
	dist := make([]float64, w*h)
	prev := make([]int32, w*h)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[idx(sx, sy)] = 0

	pq := &costHeap{{cost: 0, x: int16(sx), y: int16(sy)}}
	dirDX := [4]int{1, -1, 0, 0}
	dirDY := [4]int{0, 0, 1, -1}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(costNode)
		cx, cy := int(cur.x), int(cur.y)
		if cur.cost > dist[idx(cx, cy)] {
			continue
		}
		if cx == tx && cy == ty {
			break
		}
		for d := 0; d < 4; d++ {
			nx, ny := cx+dirDX[d], cy+dirDY[d]
			if nx < loX || nx > hiX || ny < loY || ny > hiY {
				continue
			}
			if r.cfg.Monotone && !monotoneStep(sx, sy, tx, ty, cx, cy, nx, ny) {
				continue
			}
			var c float64
			if d < 2 { // horizontal edge
				x := minInt(cx, nx)
				ei := g.hIndex(x, cy)
				c = r.edgeCost(g.usageH[ei], g.historyH[ei], g.Capacity)
			} else {
				y := minInt(cy, ny)
				ei := g.vIndex(cx, y)
				c = r.edgeCost(g.usageV[ei], g.historyV[ei], g.Capacity)
			}
			nd := cur.cost + c
			if nd < dist[idx(nx, ny)] {
				dist[idx(nx, ny)] = nd
				prev[idx(nx, ny)] = int32(idx(cx, cy))
				heap.Push(pq, costNode{cost: nd, x: int16(nx), y: int16(ny)})
			}
		}
	}

	// Reconstruct.
	var tiles [][2]int
	at := idx(tx, ty)
	if math.IsInf(dist[at], 1) {
		return Route{} // unreachable (cannot happen on a connected window)
	}
	for at >= 0 {
		x := at%w + loX
		y := at/w + loY
		tiles = append(tiles, [2]int{x, y})
		at = int(prev[at])
	}
	// Reverse into source→sink order.
	for l, rr := 0, len(tiles)-1; l < rr; l, rr = l+1, rr-1 {
		tiles[l], tiles[rr] = tiles[rr], tiles[l]
	}
	return Route{Tiles: tiles}
}

// monotoneStep reports whether moving from (cx,cy) to (nx,ny) keeps the
// path monotone from (sx,sy) towards (tx,ty).
func monotoneStep(sx, sy, tx, ty, cx, cy, nx, ny int) bool {
	if nx != cx {
		if tx >= sx && nx < cx {
			return false
		}
		if tx <= sx && nx > cx {
			return false
		}
	}
	if ny != cy {
		if ty >= sy && ny < cy {
			return false
		}
		if ty <= sy && ny > cy {
			return false
		}
	}
	return true
}

type costNode struct {
	cost float64
	x, y int16
}

type costHeap []costNode

func (h costHeap) Len() int            { return len(h) }
func (h costHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h costHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *costHeap) Push(x interface{}) { *h = append(*h, x.(costNode)) }
func (h *costHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
