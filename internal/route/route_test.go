package route

import (
	"math/rand"
	"testing"

	"irgrid/internal/geom"
	"irgrid/internal/netlist"
)

var chip = geom.Rect{X1: 0, Y1: 0, X2: 300, Y2: 300}

func pt(x, y float64) geom.Pt { return geom.Pt{X: x, Y: y} }

// checkRoute validates connectivity and endpoint correctness.
func checkRoute(t *testing.T, g *Grid, n netlist.TwoPin, rt Route) {
	t.Helper()
	if len(rt.Tiles) == 0 {
		t.Fatal("empty route")
	}
	sx, sy := g.Tile(n.A)
	tx, ty := g.Tile(n.B)
	first, last := rt.Tiles[0], rt.Tiles[len(rt.Tiles)-1]
	if first != [2]int{sx, sy} || last != [2]int{tx, ty} {
		t.Fatalf("route endpoints %v..%v, want (%d,%d)..(%d,%d)", first, last, sx, sy, tx, ty)
	}
	for i := 1; i < len(rt.Tiles); i++ {
		dx := rt.Tiles[i][0] - rt.Tiles[i-1][0]
		dy := rt.Tiles[i][1] - rt.Tiles[i-1][1]
		if abs(dx)+abs(dy) != 1 {
			t.Fatalf("route step %v -> %v is not a unit move", rt.Tiles[i-1], rt.Tiles[i])
		}
		if rt.Tiles[i][0] < 0 || rt.Tiles[i][0] >= g.Cols ||
			rt.Tiles[i][1] < 0 || rt.Tiles[i][1] >= g.Rows {
			t.Fatalf("route leaves the grid at %v", rt.Tiles[i])
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestRouteSingleNet(t *testing.T) {
	r := New(Config{Pitch: 30})
	nets := []netlist.TwoPin{{A: pt(15, 15), B: pt(255, 195)}}
	res, err := r.RouteNets(chip, nets)
	if err != nil {
		t.Fatal(err)
	}
	checkRoute(t, res.Grid, nets[0], res.Routes[0])
	if res.Overflow != 0 {
		t.Errorf("single net overflowed: %d", res.Overflow)
	}
	// An uncongested route is shortest: Manhattan tile distance + 1
	// tiles.
	want := 8 + 6 + 1 // |dx|=8, |dy|=6 tiles
	if len(res.Routes[0].Tiles) != want {
		t.Errorf("route length %d tiles, want %d", len(res.Routes[0].Tiles), want)
	}
}

func TestRouteSameTileNet(t *testing.T) {
	r := New(Config{Pitch: 30})
	nets := []netlist.TwoPin{{A: pt(15, 15), B: pt(20, 20)}}
	res, err := r.RouteNets(chip, nets)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Routes[0].Tiles) != 1 {
		t.Errorf("same-tile net should have a 1-tile route, got %v", res.Routes[0].Tiles)
	}
	if res.Routes[0].Wirelength(30) != 0 {
		t.Error("same-tile net should have zero wirelength")
	}
}

func TestUsageAccounting(t *testing.T) {
	r := New(Config{Pitch: 30, Capacity: 2})
	nets := []netlist.TwoPin{
		{A: pt(15, 15), B: pt(285, 15)},
		{A: pt(15, 45), B: pt(285, 45)},
	}
	res, err := r.RouteNets(chip, nets)
	if err != nil {
		t.Fatal(err)
	}
	// Total edge usage equals total route steps.
	var usage int
	for y := 0; y < res.Grid.Rows; y++ {
		for x := 0; x < res.Grid.Cols-1; x++ {
			usage += res.Grid.UsageH(x, y)
		}
	}
	for y := 0; y < res.Grid.Rows-1; y++ {
		for x := 0; x < res.Grid.Cols; x++ {
			usage += res.Grid.UsageV(x, y)
		}
	}
	var steps int
	for _, rt := range res.Routes {
		steps += len(rt.Tiles) - 1
	}
	if usage != steps {
		t.Errorf("edge usage %d != route steps %d", usage, steps)
	}
}

func TestCongestionAvoidance(t *testing.T) {
	// Capacity 1 and three nets sharing a row: negotiation must spread
	// them onto different rows, ending with zero overflow.
	r := New(Config{Pitch: 30, Capacity: 1, MaxIterations: 10})
	nets := []netlist.TwoPin{
		{A: pt(15, 135), B: pt(285, 135)},
		{A: pt(15, 135), B: pt(285, 135)},
		{A: pt(15, 135), B: pt(285, 135)},
	}
	res, err := r.RouteNets(chip, nets)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overflow != 0 {
		t.Errorf("negotiation left overflow %d after %d iterations", res.Overflow, res.Iterations)
	}
	for i, rt := range res.Routes {
		checkRoute(t, res.Grid, nets[i], rt)
	}
}

func TestMonotoneModeStaysInBBox(t *testing.T) {
	r := New(Config{Pitch: 30, Capacity: 1, MaxIterations: 4, Monotone: true})
	rng := rand.New(rand.NewSource(3))
	var nets []netlist.TwoPin
	for i := 0; i < 20; i++ {
		nets = append(nets, netlist.TwoPin{
			A: pt(float64(rng.Intn(10))*30+15, float64(rng.Intn(10))*30+15),
			B: pt(float64(rng.Intn(10))*30+15, float64(rng.Intn(10))*30+15),
		})
	}
	res, err := r.RouteNets(chip, nets)
	if err != nil {
		t.Fatal(err)
	}
	for i, rt := range res.Routes {
		checkRoute(t, res.Grid, nets[i], rt)
		g := res.Grid
		sx, sy := g.Tile(nets[i].A)
		tx, ty := g.Tile(nets[i].B)
		loX, hiX := minInt(sx, tx), maxInt(sx, tx)
		loY, hiY := minInt(sy, ty), maxInt(sy, ty)
		// Monotone routes are shortest and inside the bbox.
		want := hiX - loX + hiY - loY + 1
		if len(rt.Tiles) != want {
			t.Fatalf("net %d: monotone route has %d tiles, want %d", i, len(rt.Tiles), want)
		}
		for _, tile := range rt.Tiles {
			if tile[0] < loX || tile[0] > hiX || tile[1] < loY || tile[1] > hiY {
				t.Fatalf("net %d: tile %v outside bbox", i, tile)
			}
		}
	}
}

func TestDetourUnderCongestion(t *testing.T) {
	// Non-monotone mode: with a saturated straight corridor, a net may
	// detour outside its bbox; its route is then longer than Manhattan.
	r := New(Config{Pitch: 30, Capacity: 1, MaxIterations: 6})
	var nets []netlist.TwoPin
	for i := 0; i < 4; i++ {
		nets = append(nets, netlist.TwoPin{A: pt(15, 135), B: pt(285, 135)})
	}
	res, err := r.RouteNets(chip, nets)
	if err != nil {
		t.Fatal(err)
	}
	longer := 0
	for _, rt := range res.Routes {
		if len(rt.Tiles) > 10 { // Manhattan would be 10 tiles
			longer++
		}
	}
	if longer == 0 {
		t.Error("expected at least one detoured net")
	}
}

func TestDeterministic(t *testing.T) {
	mk := func() *Result {
		r := New(Config{Pitch: 30, Capacity: 2, MaxIterations: 5})
		rng := rand.New(rand.NewSource(9))
		var nets []netlist.TwoPin
		for i := 0; i < 30; i++ {
			nets = append(nets, netlist.TwoPin{
				A: pt(rng.Float64()*300, rng.Float64()*300),
				B: pt(rng.Float64()*300, rng.Float64()*300),
			})
		}
		res, err := r.RouteNets(chip, nets)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	if a.Overflow != b.Overflow || a.Iterations != b.Iterations {
		t.Error("routing is not deterministic")
	}
	for i := range a.Routes {
		if len(a.Routes[i].Tiles) != len(b.Routes[i].Tiles) {
			t.Fatalf("net %d route lengths differ", i)
		}
	}
}

func TestOverflowMetrics(t *testing.T) {
	g := NewGrid(chip, 30, 1)
	g.usageH[g.hIndex(2, 3)] = 4 // overflow 3
	g.usageV[g.vIndex(5, 5)] = 2 // overflow 1
	total, max := g.Overflow()
	if total != 4 || max != 3 {
		t.Errorf("overflow = %d/%d, want 4/3", total, max)
	}
}

func TestEdgeUtilizations(t *testing.T) {
	g := NewGrid(chip, 100, 4)
	if g.Cols != 3 || g.Rows != 3 {
		t.Fatalf("grid %dx%d", g.Cols, g.Rows)
	}
	g.usageH[g.hIndex(0, 0)] = 2
	utils := g.EdgeUtilizations()
	wantLen := (g.Cols-1)*g.Rows + g.Cols*(g.Rows-1)
	if len(utils) != wantLen {
		t.Fatalf("%d utilizations, want %d", len(utils), wantLen)
	}
	if utils[0] != 0.5 {
		t.Errorf("util[0] = %g, want 0.5", utils[0])
	}
}

func TestBadConfig(t *testing.T) {
	r := New(Config{})
	if _, err := r.RouteNets(chip, nil); err == nil {
		t.Error("zero pitch accepted")
	}
}

func TestRipUpRestoresUsage(t *testing.T) {
	r := New(Config{Pitch: 30, Capacity: 8})
	nets := []netlist.TwoPin{{A: pt(15, 15), B: pt(255, 255)}}
	res, err := r.RouteNets(chip, nets)
	if err != nil {
		t.Fatal(err)
	}
	r.ripUp(res.Grid, res.Routes[0])
	for _, u := range res.Grid.usageH {
		if u != 0 {
			t.Fatal("rip-up left horizontal usage")
		}
	}
	for _, u := range res.Grid.usageV {
		if u != 0 {
			t.Fatal("rip-up left vertical usage")
		}
	}
}
