package server_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"irgrid/floorplan"
	"irgrid/internal/server"
	"irgrid/internal/server/harness"
	"irgrid/telemetry"
)

// longRequest is a job that effectively never finishes on its own —
// the subject of cancel/drain tests.
func longRequest(seed int64) *server.JobRequest {
	return &server.JobRequest{
		Benchmark: "ami49",
		Options: server.RunOptions{
			Alpha: 0.4, Beta: 0.2, Gamma: 0.4,
			Model: floorplan.ModelIRGrid, Pitch: 100,
			Seed:         seed,
			MovesPerTemp: 60,
			MaxTemps:     1000000,
		},
	}
}

// TestCancelQueuedJobFreesQueueSlot pins DELETE semantics on the
// bounded queue: with one worker and a single queue slot occupied,
// submissions 429; canceling the queued job frees the slot
// synchronously and the next submission is accepted.
func TestCancelQueuedJobFreesQueueSlot(t *testing.T) {
	ts := harness.StartTestServer(t, func(c *server.Config) {
		c.Workers = 1
		c.QueueDepth = 1
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	running, err := ts.Submit(ctx, longRequest(1))
	if err != nil {
		t.Fatalf("submit running job: %v", err)
	}
	if _, err := ts.WaitStatus(ctx, running.ID, func(st *server.JobStatus) bool {
		return st.State == server.StateRunning
	}); err != nil {
		t.Fatalf("first job never started: %v", err)
	}

	queued, err := ts.Submit(ctx, longRequest(2))
	if err != nil {
		t.Fatalf("submit queued job: %v", err)
	}
	if queued.State != server.StateQueued || queued.QueuePosition != 1 {
		t.Fatalf("second job state %q pos %d, want queued at position 1", queued.State, queued.QueuePosition)
	}

	// Queue full: the third submission must bounce with 429.
	_, err = ts.Submit(ctx, longRequest(3))
	var apiErr *server.Error
	if !errors.As(err, &apiErr) || apiErr.Status != 429 || apiErr.Code != server.CodeQueueFull {
		t.Fatalf("overflow submit error = %v, want 429 %s", err, server.CodeQueueFull)
	}

	// DELETE the queued job: slot freed, job terminal-canceled, and
	// its result endpoint reports the cancellation.
	canceled, err := ts.Cancel(ctx, queued.ID)
	if err != nil {
		t.Fatalf("cancel queued job: %v", err)
	}
	if canceled.State != server.StateCanceled || canceled.Outcome != telemetry.OutcomeCanceled {
		t.Fatalf("canceled job state %q outcome %q", canceled.State, canceled.Outcome)
	}
	if _, err := ts.Result(ctx, queued.ID); !errors.As(err, &apiErr) || apiErr.Code != server.CodeJobCanceled {
		t.Fatalf("result of canceled job = %v, want %s", err, server.CodeJobCanceled)
	}

	replacement, err := ts.Submit(ctx, longRequest(4))
	if err != nil {
		t.Fatalf("submit after cancel should be accepted, got %v", err)
	}

	// Cancel the running job too: cooperative, so poll to terminal.
	if _, err := ts.Cancel(ctx, running.ID); err != nil {
		t.Fatalf("cancel running job: %v", err)
	}
	final, err := ts.WaitTerminal(ctx, running.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.StateCanceled {
		t.Fatalf("running job final state %q, want canceled", final.State)
	}
	// A second DELETE of a terminal job is refused.
	if _, err := ts.Cancel(ctx, running.ID); !errors.As(err, &apiErr) || apiErr.Code != server.CodeNotCancelable {
		t.Fatalf("re-cancel error = %v, want %s", err, server.CodeNotCancelable)
	}
	// Drain the replacement so teardown is quick.
	if _, err := ts.Cancel(ctx, replacement.ID); err != nil {
		t.Fatalf("cancel replacement: %v", err)
	}
	if _, err := ts.WaitTerminal(ctx, replacement.ID); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownDrainsCheckpointsAndResumes is the graceful-drain
// contract end to end, in process: Shutdown stops a running job at
// its next move, the job is persisted back to the queue with a
// resumable checkpoint on disk, and a restarted server over the same
// state directory resumes it to a result bit-identical to a direct
// uninterrupted floorplan.Run.
func TestShutdownDrainsCheckpointsAndResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("anneals ami33 end to end twice")
	}
	req := &server.JobRequest{
		Benchmark: "ami33",
		Options: server.RunOptions{
			Alpha: 0.4, Beta: 0.2, Gamma: 0.4,
			Model: floorplan.ModelIRGrid, Pitch: 30,
			Seed:         5,
			MovesPerTemp: 30,
			MaxTemps:     60,
		},
	}
	ts := harness.StartTestServer(t) // CheckpointEvery: 1

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	st, err := ts.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	// Let the job run to at least its second periodic checkpoint, so
	// the drain interrupts genuine mid-anneal progress.
	if _, err := ts.WaitStatus(ctx, st.ID, func(s *server.JobStatus) bool {
		return s.CheckpointStep >= 2
	}); err != nil {
		t.Fatalf("job never checkpointed: %v", err)
	}

	ts2 := ts.Restart(t)

	// After the drain, the persisted job record must be queued again
	// and its checkpoint on disk.
	ckptPath := filepath.Join(ts2.StateDir, "jobs", st.ID, "run.ckpt")
	if _, err := os.Stat(ckptPath); err != nil {
		t.Fatalf("drained job has no checkpoint: %v", err)
	}
	snap, err := floorplan.LoadCheckpoint(ckptPath)
	if err != nil {
		t.Fatalf("drained checkpoint does not verify: %v", err)
	}
	if snap.Step < 1 {
		t.Errorf("drained checkpoint at step %d, want >= 1", snap.Step)
	}

	final, err := ts2.WaitTerminal(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.StateDone || final.Outcome != telemetry.OutcomeCompleted {
		t.Fatalf("resumed job state %q outcome %q error %q", final.State, final.Outcome, final.Error)
	}
	if final.Resumes < 1 {
		t.Errorf("resumed job reports %d resumes, want >= 1", final.Resumes)
	}

	got, err := ts2.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	c, err := floorplan.Benchmark("ami33")
	if err != nil {
		t.Fatal(err)
	}
	want, err := floorplan.Run(c, floorplan.Options{
		Alpha: 0.4, Beta: 0.2, Gamma: 0.4,
		Congestion:   floorplan.Congestion{Model: floorplan.ModelIRGrid, Pitch: 30},
		Seed:         5,
		MovesPerTemp: 30,
		MaxTemps:     60,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertResultMatchesDirect(t, got, want)
}

// TestTimeboxedJobReportsBestSoFar pins the per-job timeout: a job
// whose timebox expires completes with outcome "deadline" and a
// valid best-so-far result document.
func TestTimeboxedJobReportsBestSoFar(t *testing.T) {
	ts := harness.StartTestServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	req := longRequest(9)
	req.Options.TimeoutSeconds = 0.5
	st, err := ts.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	final, err := ts.WaitTerminal(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.StateDone || final.Outcome != telemetry.OutcomeDeadline {
		t.Fatalf("timeboxed job state %q outcome %q, want done/deadline", final.State, final.Outcome)
	}
	res, err := ts.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != telemetry.OutcomeDeadline || res.Area <= 0 || len(res.Modules) == 0 {
		t.Errorf("timeboxed result outcome %q area %g modules %d; want a valid partial result",
			res.Outcome, res.Area, len(res.Modules))
	}
}
