// Package server turns the floorplan library into a long-running
// multi-tenant service: an HTTP JSON job API (submit, poll, fetch
// results, cancel, stream run traces) over a bounded FIFO work queue
// with backpressure and per-client rate limits, executed by worker
// goroutines under the library's lifecycle machinery — per-job
// contexts, periodic checkpoints keyed by job ID, and crash-safe
// resume of in-flight jobs when a restarted daemon reopens the same
// state directory.
//
// Durability model: every job owns a directory under
// <StateDir>/jobs/<id>/ holding its job record (job.json), its
// periodic resumable checkpoint (run.ckpt), its JSONL run trace
// (trace.jsonl), its terminal result (result.json) and, on panic or
// cancellation, a postmortem dump. All records ride internal/ckpt's
// versioned, checksummed, atomically-renamed envelope, so a crash at
// any instant leaves either the old file or the new one — never a
// torn one. Because checkpointed annealing resumes bit-identically
// (the PR 4 contract), a job that survives any number of daemon
// restarts returns the same bits a direct floorplan.Run would have.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"irgrid/floorplan"
	"irgrid/internal/ckpt"
	"irgrid/internal/faultinject"
	"irgrid/telemetry"
)

// Job-record envelope identifiers (see internal/ckpt).
const (
	jobMagic      = "irgrid-job"
	jobVersion    = 1
	resultMagic   = "irgrid-job-result"
	resultVersion = 1
)

// Config parameterizes a Server. The zero value is not runnable:
// StateDir is required.
type Config struct {
	// StateDir is the durable root of the job store. Required.
	StateDir string
	// Workers is the number of concurrent job-running goroutines
	// (default 1: floorplanning saturates a core, so the default
	// trades latency for predictable per-job throughput).
	Workers int
	// QueueDepth bounds the number of queued (not yet running) jobs;
	// submissions beyond it get 429 + Retry-After (default 16).
	QueueDepth int
	// RateLimit is the per-client submission rate in jobs/second
	// (token bucket of RateBurst tokens); <= 0 disables rate limiting.
	RateLimit float64
	// RateBurst is the token-bucket capacity (default 4).
	RateBurst int
	// CheckpointEvery is the per-job snapshot period in temperature
	// steps (default 5).
	CheckpointEvery int
	// MaxBodyBytes caps submission bodies (default 8 MiB).
	MaxBodyBytes int64
	// MaxAttempts caps run starts per job (first run, resumes after a
	// daemon crash, panic retries) before the job is quarantined as
	// poison instead of run again (default 3). Clean drain/restart
	// cycles do not count: the attempt counter resets when a run is
	// interrupted by shutdown rather than by a crash.
	MaxAttempts int
	// StallTimeout arms the stuck-run watchdog: a running job whose
	// observable progress (annealing moves, temperature steps,
	// checkpoints) does not advance for this long is postmortem-dumped
	// and canceled, and the job marked failed. 0 disables the watchdog.
	StallTimeout time.Duration
	// WatchdogEvery is the watchdog scan period (default
	// StallTimeout/4, clamped to [50ms, 5s]).
	WatchdogEvery time.Duration
	// StoreAttempts bounds write attempts per durable-store save
	// (default 3); retries back off exponentially with jitter from
	// StoreRetryDelay (default 5ms). After the last attempt the write
	// fails persistently and the store degrades.
	StoreAttempts   int
	StoreRetryDelay time.Duration
	// ProbeEvery is the degraded store's disk re-probe period (default
	// 2s). A successful probe heals the store and flushes every record
	// held in memory.
	ProbeEvery time.Duration
	// Obs receives the server's metrics (queue depth, job counts,
	// latencies) and every job's run metrics; a new registry is
	// created when nil.
	Obs *telemetry.Registry
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

func (c *Config) fill() error {
	if c.StateDir == "" {
		return errors.New("server: Config.StateDir is required")
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.RateBurst <= 0 {
		c.RateBurst = 4
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 5
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.WatchdogEvery <= 0 && c.StallTimeout > 0 {
		c.WatchdogEvery = c.StallTimeout / 4
		if c.WatchdogEvery < 50*time.Millisecond {
			c.WatchdogEvery = 50 * time.Millisecond
		}
		if c.WatchdogEvery > 5*time.Second {
			c.WatchdogEvery = 5 * time.Second
		}
	}
	if c.StoreAttempts <= 0 {
		c.StoreAttempts = 3
	}
	if c.StoreRetryDelay <= 0 {
		c.StoreRetryDelay = 5 * time.Millisecond
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 2 * time.Second
	}
	if c.Obs == nil {
		c.Obs = telemetry.NewRegistry()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

// Server is the floorplanning job service. Construct with New, mount
// Handler on any HTTP front end (or ListenAndServe), and stop with
// Shutdown.
type Server struct {
	cfg      Config
	reg      *telemetry.Registry
	limiter  *limiter
	handler  http.Handler
	store    *store
	watchdog *watchdog

	// baseCtx parents every job context; baseCancel is the drain
	// signal.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*job
	jobs     map[string]*job
	nextID   int
	draining bool
	// pending counts submissions that hold a reserved queue slot while
	// their job record is persisted outside s.mu (see submit): the
	// admission check uses len(queue)+pending so concurrent submits
	// cannot oversubscribe the queue during the disk write.
	pending int

	wg sync.WaitGroup

	httpMu   sync.Mutex
	httpSrv  *http.Server
	httpAddr net.Addr
	httpDone chan struct{}

	// metrics
	mSubmitted   *telemetry.Counter
	mCompleted   *telemetry.Counter
	mFailed      *telemetry.Counter
	mCanceled    *telemetry.Counter
	mResumed     *telemetry.Counter
	mRecovered   *telemetry.Counter
	mQueueFull   *telemetry.Counter
	mRateLimited *telemetry.Counter
	mRequests    *telemetry.Counter
	gQueueDepth  *telemetry.Gauge
	gRunning     *telemetry.Gauge
	hQueueWait   *telemetry.Histogram
	hRunSeconds  *telemetry.Histogram

	// Robustness metrics (the chaos battery asserts these by name).
	mStoreRetries    *telemetry.Counter // store_write_retries
	gStoreDegraded   *telemetry.Gauge   // store_degraded (0|1)
	mQuarantined     *telemetry.Counter // jobs_quarantined
	mWatchdogCancels *telemetry.Counter // watchdog_cancels
}

// New builds the server: it creates the state directory, recovers
// every persisted job (terminal jobs become queryable again; queued
// and running jobs re-enter the queue, to be resumed from their last
// checkpoint), and starts the worker pool. The HTTP side starts
// separately (Handler / ListenAndServe).
func New(cfg Config) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Obs,
		limiter: newLimiter(cfg.RateLimit, cfg.RateBurst),
		jobs:    map[string]*job{},
		nextID:  1,
	}
	s.cond = sync.NewCond(&s.mu)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())

	s.mSubmitted = s.reg.Counter("server_jobs_submitted_total")
	s.mCompleted = s.reg.Counter("server_jobs_completed_total")
	s.mFailed = s.reg.Counter("server_jobs_failed_total")
	s.mCanceled = s.reg.Counter("server_jobs_canceled_total")
	s.mResumed = s.reg.Counter("server_jobs_resumed_total")
	s.mRecovered = s.reg.Counter("server_jobs_recovered_total")
	s.mQueueFull = s.reg.Counter("server_queue_full_total")
	s.mRateLimited = s.reg.Counter("server_rate_limited_total")
	s.mRequests = s.reg.Counter("server_http_requests_total")
	s.gQueueDepth = s.reg.Gauge("server_queue_depth")
	s.gRunning = s.reg.Gauge("server_jobs_running")
	s.hQueueWait = s.reg.Histogram("server_queue_wait_seconds",
		[]float64{0.01, 0.1, 1, 10, 60, 600})
	s.hRunSeconds = s.reg.Histogram("server_job_run_seconds",
		[]float64{0.1, 1, 10, 60, 600, 3600})
	s.mStoreRetries = s.reg.Counter("store_write_retries")
	s.gStoreDegraded = s.reg.Gauge("store_degraded")
	s.mQuarantined = s.reg.Counter("jobs_quarantined")
	s.mWatchdogCancels = s.reg.Counter("watchdog_cancels")
	s.store = newStore(storeConfig{
		probePath:  filepath.Join(cfg.StateDir, ".probe"),
		attempts:   cfg.StoreAttempts,
		baseDelay:  cfg.StoreRetryDelay,
		probeEvery: cfg.ProbeEvery,
		logf:       cfg.Logf,
		onHeal:     s.flushDirty,
		retries:    s.mStoreRetries,
		degraded:   s.gStoreDegraded,
	})

	if err := os.MkdirAll(s.jobsDir(), 0o755); err != nil {
		return nil, fmt.Errorf("server: creating state dir: %w", err)
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.handler = s.buildHandler()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.workerLoop()
	}
	if cfg.StallTimeout > 0 {
		s.watchdog = newWatchdog(s, cfg.StallTimeout, cfg.WatchdogEvery)
		go s.watchdog.run()
	}
	return s, nil
}

func (s *Server) jobsDir() string { return filepath.Join(s.cfg.StateDir, "jobs") }

// Config returns a copy of the server's effective configuration
// (defaults filled in), so a harness can restart an identical
// instance over the same state directory.
func (s *Server) Config() Config { return s.cfg }

// recover rebuilds the job table from the state directory. Directory
// names are zero-padded job IDs, so lexical order is submission
// order — recovered jobs re-enter the queue FIFO as originally
// submitted.
//
// The scan is tolerant: a directory whose record is corrupt, torn or
// version-skewed is quarantined (a terminal tombstone preserving the
// offending bytes) rather than aborting startup or silently vanishing,
// and a job that already burned its whole run-attempt budget crashing
// previous daemons is quarantined instead of re-entering the queue —
// the crash-loop killer.
func (s *Server) recover() error {
	entries, err := os.ReadDir(s.jobsDir())
	if err != nil {
		return fmt.Errorf("server: scanning job store: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		dir := filepath.Join(s.jobsDir(), name)
		if n := idNumber(name); n >= s.nextID {
			s.nextID = n + 1
		}
		j, err := s.loadJob(name, dir)
		if err != nil {
			// A previously quarantined directory rebuilds from its
			// quarantine record (its job.json may be the corrupt file
			// that caused the quarantine); anything else newly broken
			// is quarantined now.
			if qj := s.loadQuarantined(name, dir); qj != nil {
				s.jobs[name] = qj
				continue
			}
			s.quarantineRecovered(name, dir, err)
			continue
		}
		s.jobs[j.id] = j
		if !terminalState(j.state) {
			if j.attempts >= s.cfg.MaxAttempts {
				s.quarantineJob(j, fmt.Sprintf(
					"crash loop: %d run attempts without a clean exit (cap %d)",
					j.attempts, s.cfg.MaxAttempts))
				continue
			}
			s.queue = append(s.queue, j)
			s.mRecovered.Inc()
			s.cfg.Logf("server: recovered job %s (%s, %d checkpointed resumes)",
				j.id, j.spec.circuit.Name, j.resumes)
		}
	}
	s.gQueueDepth.Set(float64(len(s.queue)))
	return nil
}

// loadJob reads one persisted job directory back into a live record.
// A queued or running record becomes queued: "running" on disk means
// the previous daemon died mid-run, and the job's checkpoint (if it
// got far enough to write one) makes re-running it bit-identical to
// never having died.
func (s *Server) loadJob(name, dir string) (*job, error) {
	var pj persistedJob
	if err := ckpt.LoadAs(filepath.Join(dir, "job.json"), jobMagic, jobVersion, &pj); err != nil {
		return nil, fmt.Errorf("%w: %v", errJobCorrupt, err)
	}
	if pj.ID != name {
		return nil, fmt.Errorf("%w: record id %q in dir %q", errJobCorrupt, pj.ID, name)
	}
	spec, apiErr := validateRequest(pj.Request)
	if apiErr != nil {
		return nil, fmt.Errorf("%w: persisted request no longer validates: %v", errJobCorrupt, apiErr)
	}
	j := newJob(pj.ID, dir, spec, pj.CreatedUnixNs)
	j.started = pj.StartedUnixNs
	j.finished = pj.FinishedUnixNs
	j.outcome = pj.Outcome
	j.errMsg = pj.Error
	j.resumes = pj.Resumes
	j.attempts = pj.Attempts
	if terminalState(pj.State) {
		j.state = pj.State //irlint:allow statemachine(restoring a persisted terminal state; terminalState gates the value)
		close(j.done)
	} else {
		j.state = StateQueued
	}
	return j, nil
}

func idNumber(id string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "j"))
	if err != nil {
		return 0
	}
	return n
}

// Handler returns the server's HTTP API. Mount it directly on an
// httptest.Server in tests, or let ListenAndServe own the listener.
func (s *Server) Handler() http.Handler { return s.handler }

// ListenAndServe binds addr and serves the job API in a background
// goroutine, returning the bound address (useful with ":0").
func (s *Server) ListenAndServe(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.httpMu.Lock()
	defer s.httpMu.Unlock()
	if s.httpSrv != nil {
		ln.Close()
		return nil, errors.New("server: already serving")
	}
	s.httpSrv = &http.Server{Handler: s.handler}
	s.httpAddr = ln.Addr()
	s.httpDone = make(chan struct{})
	done := s.httpDone
	go func() {
		defer close(done)
		if err := s.httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.cfg.Logf("server: http serve: %v", err)
		}
	}()
	return ln.Addr(), nil
}

// Addr returns the bound address after ListenAndServe, else nil.
func (s *Server) Addr() net.Addr {
	s.httpMu.Lock()
	defer s.httpMu.Unlock()
	return s.httpAddr
}

// Shutdown gracefully drains the server: new submissions are refused,
// queued jobs stay persisted as queued, running jobs are canceled at
// their next annealing move — each writes a final resumable
// checkpoint and is persisted back to queued — and the worker pool
// plus the HTTP listener (when ListenAndServe was used) are joined
// before returning. A later New on the same state directory resumes
// every interrupted job bit-identically.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()
	// Cancel every in-flight job context (queued jobs have none).
	s.baseCancel()

	workersDone := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(workersDone)
	}()
	var err error
	select {
	case <-workersDone:
	case <-ctx.Done():
		err = fmt.Errorf("server: draining workers: %w", ctx.Err())
	}

	if s.watchdog != nil {
		s.watchdog.close()
	}
	s.store.close()
	if down, reason, _ := s.store.state(); down {
		s.cfg.Logf("server: shutting down degraded (%s); records held in memory are lost", reason)
	} else {
		// Final best-effort flush of anything a past degraded window
		// left dirty.
		s.flushDirty()
	}

	s.httpMu.Lock()
	srv, done := s.httpSrv, s.httpDone
	s.httpMu.Unlock()
	if srv != nil {
		if herr := srv.Shutdown(ctx); herr != nil && err == nil {
			err = herr
		}
		select {
		case <-done:
		case <-ctx.Done():
			if err == nil {
				err = ctx.Err()
			}
		}
	}
	return err
}

// workerLoop runs jobs until drain.
func (s *Server) workerLoop() {
	defer s.wg.Done()
	for {
		j := s.dequeue()
		if j == nil {
			return
		}
		s.runJob(j)
	}
}

// dequeue pops the FIFO head, blocking while the queue is empty.
// It returns nil when the server is draining — including when jobs
// remain queued: they stay persisted for the next daemon.
func (s *Server) dequeue() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == 0 && !s.draining {
		s.cond.Wait()
	}
	if s.draining {
		return nil
	}
	j := s.queue[0]
	s.queue = s.queue[1:]
	s.gQueueDepth.Set(float64(len(s.queue)))
	return j
}

// submit validates and enqueues one job. It is called with the
// request body already read (and capped).
func (s *Server) submit(body []byte) (*JobStatus, *Error) {
	spec, apiErr := decodeJobRequest(body)
	if apiErr != nil {
		return nil, apiErr
	}
	now := time.Now().UnixNano()

	// Phase 1 under s.mu: admission control and identity. The queue
	// slot is reserved (pending) so the record can be persisted off the
	// lock — the retrying store can spend seconds on a sick disk, and
	// holding s.mu across that would stall every status poll and
	// dequeue (the lockscope invariant) — without letting concurrent
	// submits oversubscribe the queue meanwhile.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, &Error{Status: http.StatusServiceUnavailable, Code: CodeShuttingDown,
			Message: "server is draining; resubmit after restart"}
	}
	if len(s.queue)+s.pending >= s.cfg.QueueDepth {
		occupied := len(s.queue) + s.pending
		s.mQueueFull.Inc()
		s.mu.Unlock()
		return nil, &Error{Status: http.StatusTooManyRequests, Code: CodeQueueFull,
			Message: fmt.Sprintf("job queue is full (%d queued)", occupied)}
	}
	id := fmt.Sprintf("j%08d", s.nextID)
	s.nextID++
	dir := filepath.Join(s.jobsDir(), id)
	j := newJob(id, dir, spec, now)
	s.jobs[id] = j
	s.pending++
	s.mu.Unlock()

	// Disk I/O with no server lock held. Degraded acceptance: a failing
	// disk does not refuse work. The job is accepted and runs from
	// memory; its record is marked dirty and written by the heal flush
	// once the store recovers. (Readiness — /readyz — reports degraded
	// so load balancers can steer new traffic elsewhere, but jobs that
	// do arrive are served.)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.store.degrade(&StoreError{Op: "mkdir", Path: dir, Err: err})
		j.mu.Lock()
		j.dirty = true
		j.mu.Unlock()
	} else {
		s.persistJob(j)
	}

	// Phase 2 under s.mu: release the reservation and enqueue. The job
	// was visible in s.jobs during the write, so it may already have
	// been canceled — a canceled job must not enter the queue.
	s.mu.Lock()
	s.pending--
	j.mu.Lock()
	enqueue := j.state == StateQueued
	j.mu.Unlock()
	pos := 0
	if enqueue {
		s.queue = append(s.queue, j)
		pos = len(s.queue)
	}
	s.gQueueDepth.Set(float64(len(s.queue)))
	s.mSubmitted.Inc()
	s.cond.Signal()
	s.mu.Unlock()
	return j.status(pos), nil
}

// persistJob writes the job record durably through the retrying store.
// On persistent failure the record is held in memory (dirty) and the
// store degrades; the heal flush rewrites it when the disk returns.
// Synthetic quarantine tombstones (spec == nil) have no job record to
// write — quarantine.json is their persistence.
func (s *Server) persistJob(j *job) {
	if j.spec == nil {
		return
	}
	err := s.store.save(filepath.Join(j.dir, "job.json"), jobMagic, jobVersion, j.persisted())
	j.mu.Lock()
	j.dirty = err != nil
	j.mu.Unlock()
	if err != nil {
		s.store.degrade(err)
		s.cfg.Logf("server: job %s record held in memory: %v", j.id, err)
	}
}

// flushDirty rewrites every record held in memory while the store was
// degraded: job records, result documents, quarantine documents. It is
// the store's onHeal callback and Shutdown's final best-effort flush.
// A write failure during the flush re-degrades the store (restarting
// the probe loop) and stops; remaining records stay dirty for the next
// heal.
func (s *Server) flushDirty() {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].id < jobs[b].id })
	for _, j := range jobs {
		j.mu.Lock()
		dirty, rdirty, qdirty := j.dirty, j.resultDirty, j.quarDirty
		res, qdoc := j.result, j.quarDoc
		j.mu.Unlock()
		if !dirty && !rdirty && !qdirty {
			continue
		}
		if err := os.MkdirAll(j.dir, 0o755); err != nil {
			s.store.degrade(&StoreError{Op: "mkdir", Path: j.dir, Err: err})
			return
		}
		if dirty {
			s.persistJob(j)
			if down, _, _ := s.store.state(); down {
				return
			}
		}
		if rdirty && res != nil {
			err := s.store.save(filepath.Join(j.dir, "result.json"), resultMagic, resultVersion, res)
			if err != nil {
				s.store.degrade(err)
				return
			}
			j.mu.Lock()
			j.resultDirty = false
			j.mu.Unlock()
		}
		if qdirty && qdoc != nil {
			s.persistQuarantine(j, qdoc)
			if down, _, _ := s.store.state(); down {
				return
			}
		}
		s.cfg.Logf("server: job %s records flushed after heal", j.id)
	}
}

// lookup finds a job and its current queue position (0 when not
// queued).
func (s *Server) lookup(id string) (*job, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return nil, 0
	}
	for i, q := range s.queue {
		if q == j {
			return j, i + 1
		}
	}
	return j, 0
}

// cancelJob implements DELETE /v1/jobs/{id}: a queued job is canceled
// immediately (freeing its queue slot); a running job's context is
// canceled, and the worker marks it canceled at the next annealing
// move; a terminal job is not cancelable.
func (s *Server) cancelJob(id string) (*JobStatus, *Error) {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil {
		s.mu.Unlock()
		return nil, &Error{Status: http.StatusNotFound, Code: CodeNotFound,
			Message: fmt.Sprintf("no job %q", id)}
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		for i, q := range s.queue {
			if q == j {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		s.gQueueDepth.Set(float64(len(s.queue)))
		j.state = StateCanceled
		j.outcome = telemetry.OutcomeCanceled
		j.finished = time.Now().UnixNano()
		j.cancelRequested = true
		close(j.done)
		j.mu.Unlock()
		s.mu.Unlock()
		s.mCanceled.Inc()
		s.persistJob(j)
		return j.status(0), nil
	case StateRunning:
		j.cancelRequested = true
		cancel := j.cancel
		j.mu.Unlock()
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return j.status(0), nil
	default:
		j.mu.Unlock()
		s.mu.Unlock()
		return nil, &Error{Status: http.StatusConflict, Code: CodeNotCancelable,
			Message: fmt.Sprintf("job %s is %s", id, j.status(0).State)}
	}
}

// listJobs snapshots every job's status, newest first.
func (s *Server) listJobs() []*JobStatus {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	pos := map[*job]int{}
	for i, q := range s.queue {
		pos[q] = i + 1
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].id > jobs[b].id })
	out := make([]*JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status(pos[j])
	}
	return out
}

// runJob executes one job under the library's lifecycle machinery.
// A panic anywhere in the run is recovered (with a postmortem dump)
// instead of killing the worker: the job is retried until its attempt
// budget (Config.MaxAttempts) is spent, then quarantined as poison.
func (s *Server) runJob(j *job) {
	rec := telemetry.NewRecorder(0)
	live := telemetry.NewStatus()
	defer func() {
		if r := recover(); r != nil {
			if path, derr := rec.Dump("job_panic"); derr == nil && path != "" {
				s.cfg.Logf("server: job %s panic postmortem written to %s", j.id, path)
			}
			s.handleRunPanic(j, r)
			s.gRunning.Set(s.runningCount())
		}
	}()

	var ctx context.Context
	var cancel context.CancelFunc
	if j.spec.timeout > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, j.spec.timeout)
	} else {
		ctx, cancel = context.WithCancel(s.baseCtx)
	}
	defer cancel()

	start := time.Now()
	j.mu.Lock()
	j.state = StateRunning
	j.started = start.UnixNano()
	j.ckptStep = 0
	j.cancel = cancel
	j.attempts++
	j.rec, j.live = rec, live
	j.lastProgress, j.lastProgressAtNs, j.watchdogFired = 0, 0, false
	attempt := j.attempts
	waited := time.Duration(j.started - j.created)
	j.mu.Unlock()
	s.hQueueWait.Observe(waited.Seconds())
	s.gRunning.Set(s.runningCount())
	// The attempt counter is persisted before any job code runs, so a
	// crash loop that kills the whole process is still counted on
	// restart.
	s.persistJob(j)

	// A poison job's crash may land before the library arms the
	// recorder; arm it here so every quarantine and stall carries a
	// postmortem.
	rec.Arm(filepath.Join(j.dir, "postmortem.json"),
		telemetry.PostmortemInfo{Circuit: j.spec.circuit.Name, Seed: j.spec.opts.Seed},
		s.reg, nil, live)

	if ferr := faultinject.FirePath(faultinject.JobRun, j.id, attempt); ferr != nil {
		// An injected immediate run failure (not a panic): terminal,
		// like any non-cancellation run error.
		j.mu.Lock()
		j.cancel = nil
		j.mu.Unlock()
		s.finishJob(j, StateFailed, telemetry.OutcomeError, ferr.Error())
		s.gRunning.Set(s.runningCount())
		return
	}

	opts := j.spec.opts
	opts.CheckpointPath = filepath.Join(j.dir, "run.ckpt")
	opts.CheckpointEvery = s.cfg.CheckpointEvery
	opts.Obs = s.reg
	opts.Status = live
	opts.Recorder = rec
	opts.PostmortemPath = filepath.Join(j.dir, "postmortem.json")
	spans := telemetry.NewSpans()
	opts.Spans = spans
	opts.Checkpoint = func(snap *floorplan.Snapshot) error {
		j.mu.Lock()
		j.ckptStep = snap.Step
		j.mu.Unlock()
		return nil
	}
	tracer, terr := openTrace(filepath.Join(j.dir, "trace.jsonl"))
	if terr != nil {
		s.cfg.Logf("server: job %s trace: %v", j.id, terr)
	} else {
		opts.Trace = tracer
	}

	var res *floorplan.Result
	var runErr error
	resumed := false
	if snap, lerr := floorplan.LoadCheckpoint(opts.CheckpointPath); lerr == nil {
		resumed = true
		res, runErr = floorplan.Resume(ctx, j.spec.circuit, opts, snap)
	} else {
		if !os.IsNotExist(underlying(lerr)) {
			// A checkpoint exists but does not verify (e.g. a version
			// skew): rerunning from scratch is always safe — it
			// produces the same bits the checkpointed run would have.
			s.cfg.Logf("server: job %s checkpoint unusable (%v); rerunning from scratch", j.id, lerr)
		}
		res, runErr = floorplan.RunContext(ctx, j.spec.circuit, opts)
	}
	tracer.Close()
	s.hRunSeconds.Observe(time.Since(start).Seconds())
	j.mu.Lock()
	if resumed {
		j.resumes++
	}
	j.spans = spans.Aggregates()
	j.cancel = nil
	userCancel := j.cancelRequested
	wdFired := j.watchdogFired
	j.mu.Unlock()
	if resumed {
		s.mResumed.Inc()
	}

	switch {
	case runErr == nil:
		s.writeResult(j, res, telemetry.OutcomeCompleted)
	case errors.Is(runErr, floorplan.ErrDeadline):
		// The job's own timebox expired; the best-so-far result is
		// valid and fully evaluated.
		s.writeResult(j, res, telemetry.OutcomeDeadline)
	case errors.Is(runErr, floorplan.ErrCanceled):
		switch {
		case userCancel:
			s.finishJob(j, StateCanceled, telemetry.OutcomeCanceled, "")
		case wdFired:
			// The watchdog canceled a stalled run: terminal failure, not
			// a requeue — a job that stalled once would stall again.
			s.finishJob(j, StateFailed, telemetry.OutcomeError, stallError(s.cfg.StallTimeout))
		default:
			// Server drain: the final checkpoint is on disk; hand the
			// job back to the queue for the next daemon. The clean exit
			// proves this job did not crash the worker, so its attempt
			// does not count against the crash-loop budget.
			s.requeueJob(j)
		}
	default:
		s.finishJob(j, StateFailed, telemetry.OutcomeError, runErr.Error())
	}
	s.gRunning.Set(s.runningCount())
}

// handleRunPanic routes a recovered worker panic: requeue for another
// attempt while budget remains, quarantine when it is spent.
func (s *Server) handleRunPanic(j *job, r any) {
	j.mu.Lock()
	j.cancel = nil
	attempts := j.attempts
	j.mu.Unlock()
	if attempts >= s.cfg.MaxAttempts {
		s.quarantineJob(j, fmt.Sprintf("poison job: panicked on attempt %d/%d: %v",
			attempts, s.cfg.MaxAttempts, r))
		return
	}
	s.cfg.Logf("server: job %s panicked on attempt %d/%d (%v); requeued",
		j.id, attempts, s.cfg.MaxAttempts, r)
	s.requeueForRetry(j)
}

// requeueForRetry puts a crashed job back on the queue, keeping its
// attempt count — the difference from requeueJob's clean-drain path.
func (s *Server) requeueForRetry(j *job) {
	j.mu.Lock()
	j.state = StateQueued
	j.started = 0
	j.rec, j.live = nil, nil
	j.mu.Unlock()
	s.persistJob(j)
	s.mu.Lock()
	if !s.draining {
		s.queue = append(s.queue, j)
		s.gQueueDepth.Set(float64(len(s.queue)))
		s.cond.Signal()
	}
	s.mu.Unlock()
}

// underlying unwraps the fs error inside floorplan.LoadCheckpoint
// failures so IsNotExist works.
func underlying(err error) error {
	for {
		u := errors.Unwrap(err)
		if u == nil {
			return err
		}
		err = u
	}
}

func (s *Server) runningCount() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.state == StateRunning {
			n++
		}
		j.mu.Unlock()
	}
	return float64(n)
}

// writeResult records the terminal result — in memory first (the
// authoritative serving copy), then durably — and marks the job done.
// Result JSON round-trips float64 exactly (encoding/json emits the
// shortest representation that parses back to the same bits), so the
// served result is bit-identical to the in-memory one.
//
// A result-persist failure no longer fails the job: the computed
// result is real and servable from memory. The store degrades, and the
// heal flush writes result.json when the disk returns.
func (s *Server) writeResult(j *job, res *floorplan.Result, outcome string) {
	j.mu.Lock()
	resumes := j.resumes
	j.mu.Unlock()
	doc := resultDoc(res, outcome, resumes)
	err := s.store.save(filepath.Join(j.dir, "result.json"), resultMagic, resultVersion, doc)
	j.mu.Lock()
	j.result = doc
	j.resultDirty = err != nil
	j.mu.Unlock()
	if err != nil {
		s.store.degrade(err)
		s.cfg.Logf("server: job %s result held in memory: %v", j.id, err)
	}
	s.finishJob(j, StateDone, outcome, "")
}

// finishJob marks the job terminal, persists it and releases waiters.
func (s *Server) finishJob(j *job, state, outcome, errMsg string) {
	j.mu.Lock()
	if terminalState(j.state) {
		j.mu.Unlock()
		return
	}
	j.state = state //irlint:allow statemachine(callers pass a terminal-state constant; the terminalState guard above keeps terminal states sticky)
	j.outcome = outcome
	j.errMsg = errMsg
	j.finished = time.Now().UnixNano()
	close(j.done)
	j.mu.Unlock()
	switch state {
	case StateDone:
		s.mCompleted.Inc()
	case StateFailed:
		s.mFailed.Inc()
		s.cfg.Logf("server: job %s failed: %s", j.id, errMsg)
	case StateCanceled:
		s.mCanceled.Inc()
	}
	s.persistJob(j)
}

// requeueJob hands a drain-interrupted job back to the persisted
// queue so the next daemon resumes it. The clean exit resets the
// crash-loop attempt counter: an orderly drain proves the job did not
// take the worker down.
func (s *Server) requeueJob(j *job) {
	j.mu.Lock()
	j.state = StateQueued
	j.started = 0
	j.attempts = 0
	j.rec, j.live = nil, nil
	j.mu.Unlock()
	s.persistJob(j)
	s.cfg.Logf("server: job %s checkpointed and requeued for restart", j.id)
}

// loadResult returns a terminal job's result document: the in-memory
// copy when this process computed it (always present while the store
// is degraded), else the persisted one.
func (s *Server) loadResult(j *job) (*JobResult, error) {
	j.mu.Lock()
	doc := j.result
	j.mu.Unlock()
	if doc != nil {
		return doc, nil
	}
	var out JobResult
	if err := ckpt.LoadAs(filepath.Join(j.dir, "result.json"), resultMagic, resultVersion, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// openTrace opens the job's JSONL trace for appending: a resumed
// job's trace carries the full event history across restarts, one
// run_start..run_end block per attempt.
func openTrace(path string) (*telemetry.Tracer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return telemetry.NewTracer(f), nil
}
