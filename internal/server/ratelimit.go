package server

import (
	"math"
	"net"
	"net/http"
	"sync"
	"time"
)

// limiter is a per-client token-bucket rate limiter for job
// submissions. Each client key owns a bucket holding up to burst
// tokens refilled at rate tokens/second; a submission spends one
// token. Clients identify themselves with the X-Client-ID header;
// without one, the remote host is the key, so distinct tenants behind
// distinct addresses never share a bucket by accident.
type limiter struct {
	rate  float64 // tokens per second; <= 0 disables the limiter
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxBuckets bounds the per-client state an adversarial client churn
// can allocate; stale buckets are pruned once the map is full.
const maxBuckets = 16384

func newLimiter(rate float64, burst int) *limiter {
	if burst <= 0 {
		burst = 1
	}
	return &limiter{rate: rate, burst: float64(burst), buckets: map[string]*bucket{}}
}

// allow spends one token from key's bucket. When the bucket is empty
// it reports false plus how long until the next token accrues —
// the Retry-After hint.
func (l *limiter) allow(key string, now time.Time) (bool, time.Duration) {
	if l == nil || l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[key]
	if !ok {
		if len(l.buckets) >= maxBuckets {
			l.pruneLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		elapsed := now.Sub(b.last).Seconds()
		if elapsed > 0 {
			b.tokens = math.Min(l.burst, b.tokens+elapsed*l.rate)
			b.last = now
		}
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / l.rate
	return false, time.Duration(need * float64(time.Second))
}

// pruneLocked drops buckets that have been idle long enough to be
// full again — remembering them is equivalent to recreating them.
func (l *limiter) pruneLocked(now time.Time) {
	idle := time.Duration(l.burst / l.rate * float64(time.Second))
	for k, b := range l.buckets {
		if now.Sub(b.last) >= idle {
			delete(l.buckets, k)
		}
	}
}

// clientKey extracts the rate-limit identity of a request.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}
