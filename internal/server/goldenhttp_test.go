package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"irgrid/internal/faultinject"
	"irgrid/internal/server"
	"irgrid/internal/server/harness"
)

// The HTTP golden suite snapshots the service's wire format — error
// envelopes and job-status documents — into testdata/server/*.json.
// Any change to a status code, error code, message or document shape
// shows up as a golden diff. Regenerate after an intentional API
// change with:
//
//	go test ./internal/server -run TestGoldenHTTP -update
//
// and review the JSON diff like any other code change.

var updateHTTPGolden = flag.Bool("update", false, "rewrite testdata/server fixtures with current responses")

// goldenExchange is one snapshotted response: the status code plus the
// decoded body with volatile fields scrubbed.
type goldenExchange struct {
	Status int `json:"status"`
	Body   any `json:"body"`
}

// scrub zeroes wall-clock fields and drops measured ones so fixtures
// are deterministic across runs and machines.
func scrub(v any) any {
	switch x := v.(type) {
	case map[string]any:
		for k, val := range x {
			switch k {
			case "created_unix_ns", "started_unix_ns", "finished_unix_ns", "degraded_since_unix_ns":
				if f, ok := val.(float64); ok && f != 0 {
					x[k] = 1
				}
			case "spans", "runtime_seconds", "version":
				delete(x, k)
			case "degraded_reason", "reason":
				// Degraded reasons embed temp-dir paths; pin the shape,
				// not the path.
				if s, ok := val.(string); ok && s != "" && s != "draining" {
					x[k] = "scrubbed"
				}
			default:
				x[k] = scrub(val)
			}
		}
		return x
	case []any:
		for i := range x {
			x[i] = scrub(x[i])
		}
		return x
	default:
		return v
	}
}

func checkGolden(t *testing.T, name string, status int, body []byte) {
	t.Helper()
	var doc any
	if len(body) > 0 {
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("%s: response is not JSON: %v\n%s", name, err, body)
		}
	}
	got, err := json.MarshalIndent(goldenExchange{Status: status, Body: scrub(doc)}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "server", name+".json")
	if *updateHTTPGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden %s\n--- got ---\n%s--- want ---\n%s\nregenerate with: go test ./internal/server -run TestGoldenHTTP -update",
			name, path, got, want)
	}
}

// TestGoldenHTTP drives the live API through every documented error
// path and the status document of a finished job, snapshotting each
// response against its fixture.
func TestGoldenHTTP(t *testing.T) {
	ts := harness.StartTestServer(t, func(c *server.Config) {
		c.Workers = 1
		c.QueueDepth = 4
	})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	raw := func(method, path string, body []byte) (int, []byte) {
		t.Helper()
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, ts.HTTP.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, b
	}

	// Error envelopes that need no jobs at all.
	for _, tc := range []struct {
		name, method, path string
		body               []byte
	}{
		{"error_invalid_json", http.MethodPost, "/v1/jobs", []byte(`{not json`)},
		{"error_unknown_field", http.MethodPost, "/v1/jobs", []byte(`{"benchmark":"apte","bogus":1}`)},
		{"error_invalid_options", http.MethodPost, "/v1/jobs", []byte(`{"benchmark":"apte","options":{"alpha":-1}}`)},
		{"error_two_sources", http.MethodPost, "/v1/jobs", []byte(`{"benchmark":"apte","yal":"MODULE x;"}`)},
		{"error_not_found", http.MethodGet, "/v1/jobs/j99999999", nil},
		{"error_method_not_allowed", http.MethodPut, "/v1/jobs", nil},
	} {
		status, body := raw(tc.method, tc.path, tc.body)
		checkGolden(t, tc.name, status, body)
	}

	// Job-bearing fixtures: pin the worker on a long job so the second
	// submission is deterministically queued.
	blocker, err := ts.Submit(ctx, longRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ts.WaitStatus(ctx, blocker.ID, func(st *server.JobStatus) bool {
		return st.State == server.StateRunning
	}); err != nil {
		t.Fatal(err)
	}
	queuedBody, err := json.Marshal(testRequest("apte", 7))
	if err != nil {
		t.Fatal(err)
	}
	status, body := raw(http.MethodPost, "/v1/jobs", queuedBody)
	checkGolden(t, "status_accepted", status, body)
	var queued server.JobStatus
	if err := json.Unmarshal(body, &queued); err != nil {
		t.Fatal(err)
	}

	status, body = raw(http.MethodGet, fmt.Sprintf("/v1/jobs/%s/result", queued.ID), nil)
	checkGolden(t, "error_not_ready", status, body)

	status, body = raw(http.MethodDelete, fmt.Sprintf("/v1/jobs/%s", queued.ID), nil)
	checkGolden(t, "status_canceled", status, body)
	status, body = raw(http.MethodGet, fmt.Sprintf("/v1/jobs/%s/result", queued.ID), nil)
	checkGolden(t, "error_job_canceled", status, body)

	// Unpin the worker and snapshot a finished job's status document.
	if _, err := ts.Cancel(ctx, blocker.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.WaitTerminal(ctx, blocker.ID); err != nil {
		t.Fatal(err)
	}
	done, err := ts.Submit(ctx, testRequest("apte", 7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ts.WaitTerminal(ctx, done.ID); err != nil {
		t.Fatal(err)
	}
	status, body = raw(http.MethodGet, fmt.Sprintf("/v1/jobs/%s", done.ID), nil)
	checkGolden(t, "status_done", status, body)

	// Liveness and readiness docs ride along (version scrubbed).
	status, body = raw(http.MethodGet, "/healthz", nil)
	checkGolden(t, "healthz", status, body)
	status, body = raw(http.MethodGet, "/readyz", nil)
	checkGolden(t, "readyz", status, body)

	// Degraded mode on the wire: with every durable write under the
	// state dir failing, a job is still accepted and runs to done from
	// memory; /healthz stays 200 (liveness) reporting durable=false,
	// /readyz flips to 503.
	faultinject.SetPath(func(p faultinject.Point, path string, _ int) error {
		if p == faultinject.FSWrite && strings.HasPrefix(path, ts.StateDir) {
			return errors.New("injected EIO")
		}
		return nil
	})
	defer faultinject.Reset()
	deg, err := ts.Submit(ctx, tinyRequest(11))
	if err != nil {
		t.Fatalf("submit while store degraded: %v", err)
	}
	if st, werr := ts.WaitTerminal(ctx, deg.ID); werr != nil || st.State != server.StateDone {
		t.Fatalf("degraded job ended (%v, %v), want done", st, werr)
	}
	status, body = raw(http.MethodGet, "/healthz", nil)
	checkGolden(t, "healthz_degraded", status, body)
	status, body = raw(http.MethodGet, "/readyz", nil)
	checkGolden(t, "readyz_degraded", status, body)
	faultinject.Reset()
}
