package server_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"irgrid/internal/server"
	"irgrid/internal/server/harness"
)

// tinyRequest is the smallest real job — a handful of moves on apte —
// for tests that need many jobs to finish quickly.
func tinyRequest(seed int64) *server.JobRequest {
	return &server.JobRequest{
		Benchmark: "apte",
		Options: server.RunOptions{
			Alpha: 0.5, Beta: 0.5,
			Seed:         seed,
			MovesPerTemp: 4,
			MaxTemps:     2,
		},
	}
}

// TestConcurrentClientsFIFOFairness hammers a single-worker queue
// from several concurrent clients and verifies the service never
// reorders work: jobs start and finish in exactly the order their
// submissions were accepted (job IDs are allocated in accept order).
func TestConcurrentClientsFIFOFairness(t *testing.T) {
	const clients, jobsPerClient = 3, 3
	ts := harness.StartTestServer(t, func(c *server.Config) {
		c.Workers = 1
		c.QueueDepth = clients * jobsPerClient
	})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var (
		mu  sync.Mutex
		ids []string
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients*jobsPerClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := harness.NewClient(ts.HTTP.URL)
			cl.ClientID = fmt.Sprintf("client-%d", c)
			for j := 0; j < jobsPerClient; j++ {
				st, err := cl.Submit(ctx, tinyRequest(int64(100*c+j)))
				if err != nil {
					errs <- fmt.Errorf("client %d job %d: %w", c, j, err)
					return
				}
				mu.Lock()
				ids = append(ids, st.ID)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if len(ids) != clients*jobsPerClient {
		t.Fatalf("accepted %d jobs, want %d", len(ids), clients*jobsPerClient)
	}

	finals := make(map[string]*server.JobStatus, len(ids))
	for _, id := range ids {
		st, err := ts.WaitTerminal(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != server.StateDone {
			t.Fatalf("job %s finished %q (%s), want done", id, st.State, st.Error)
		}
		finals[id] = st
	}

	// FIFO: sorted by ID (accept order), start times must be
	// non-decreasing and every job must start only after the previous
	// one finished (single worker).
	sort.Strings(ids)
	for i := 1; i < len(ids); i++ {
		prev, cur := finals[ids[i-1]], finals[ids[i]]
		if cur.StartedUnixNs < prev.StartedUnixNs {
			t.Errorf("job %s started before earlier-accepted %s", ids[i], ids[i-1])
		}
		if cur.StartedUnixNs < prev.FinishedUnixNs {
			t.Errorf("job %s overlapped %s on a 1-worker queue", ids[i], ids[i-1])
		}
	}
}

// TestQueueFullBackpressure pins the bounded-queue contract under
// concurrent submitters: with the worker pinned on a long job and the
// queue full, every further submission gets 429 queue_full with a
// Retry-After, and nothing panics or deadlocks.
func TestQueueFullBackpressure(t *testing.T) {
	ts := harness.StartTestServer(t, func(c *server.Config) {
		c.Workers = 1
		c.QueueDepth = 2
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	blocker, err := ts.Submit(ctx, longRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ts.WaitStatus(ctx, blocker.ID, func(st *server.JobStatus) bool {
		return st.State == server.StateRunning
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := ts.Submit(ctx, longRequest(int64(10+i))); err != nil {
			t.Fatalf("filling queue slot %d: %v", i, err)
		}
	}

	const overflow = 8
	var wg sync.WaitGroup
	rejects := make(chan error, overflow)
	for i := 0; i < overflow; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := ts.Submit(ctx, longRequest(int64(100+i)))
			rejects <- err
		}(i)
	}
	wg.Wait()
	close(rejects)
	for err := range rejects {
		var apiErr *server.Error
		if !errors.As(err, &apiErr) || apiErr.Status != 429 || apiErr.Code != server.CodeQueueFull {
			t.Fatalf("overflow submit = %v, want 429 %s", err, server.CodeQueueFull)
		}
	}
}

// TestRateLimitPerClient pins the token bucket: one client burns its
// burst and gets 429 rate_limited; a different X-Client-ID is an
// independent bucket and sails through.
func TestRateLimitPerClient(t *testing.T) {
	ts := harness.StartTestServer(t, func(c *server.Config) {
		c.RateLimit = 0.001 // effectively no refill within the test
		c.RateBurst = 2
		c.QueueDepth = 16
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	a := harness.NewClient(ts.HTTP.URL)
	a.ClientID = "client-a"
	for i := 0; i < 2; i++ {
		if _, err := a.Submit(ctx, tinyRequest(int64(i))); err != nil {
			t.Fatalf("client-a submit %d within burst: %v", i, err)
		}
	}
	_, err := a.Submit(ctx, tinyRequest(99))
	var apiErr *server.Error
	if !errors.As(err, &apiErr) || apiErr.Status != 429 || apiErr.Code != server.CodeRateLimited {
		t.Fatalf("client-a over-burst submit = %v, want 429 %s", err, server.CodeRateLimited)
	}
	if apiErr.RetryAfterSeconds <= 0 {
		t.Errorf("429 carried RetryAfterSeconds=%d, want the Retry-After header surfaced typed",
			apiErr.RetryAfterSeconds)
	}

	b := harness.NewClient(ts.HTTP.URL)
	b.ClientID = "client-b"
	if _, err := b.Submit(ctx, tinyRequest(7)); err != nil {
		t.Fatalf("client-b (fresh bucket) submit: %v", err)
	}

	// The retry loop's budget is context-bounded: with a bucket that
	// will not refill for ~1000s, a short context cuts the waits off
	// with ctx.Err(), not an unbounded sleep.
	a.Retry = &harness.RetryPolicy{MaxAttempts: 10}
	sctx, scancel := context.WithTimeout(ctx, 300*time.Millisecond)
	defer scancel()
	if _, err := a.Submit(sctx, tinyRequest(100)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("retry under expired context = %v, want context.DeadlineExceeded", err)
	}
}

// TestClientRetryHonorsRetryAfter pins the harness client's real retry
// loop: against a one-token bucket with fast refill, a burst of
// submissions from a single client all get accepted — the client waits
// out each 429's Retry-After (with jittered backoff) instead of
// surfacing it — and every job still runs to done.
func TestClientRetryHonorsRetryAfter(t *testing.T) {
	ts := harness.StartTestServer(t, func(c *server.Config) {
		c.RateLimit = 20 // refills fast; Retry-After is 1s (ceiling)
		c.RateBurst = 1
		c.QueueDepth = 16
	})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	cl := harness.NewClient(ts.HTTP.URL)
	cl.ClientID = "bursty"
	cl.Retry = &harness.RetryPolicy{MaxAttempts: 10}
	var ids []string
	for i := 0; i < 4; i++ {
		st, err := cl.Submit(ctx, tinyRequest(int64(i)))
		if err != nil {
			t.Fatalf("submit %d with retry policy: %v", i, err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		st, err := cl.WaitTerminal(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != server.StateDone {
			t.Fatalf("job %s finished %q (%s), want done", id, st.State, st.Error)
		}
	}
}

// TestShutdownLeaksNoGoroutines boots full servers, runs jobs through
// them, shuts down, and verifies the goroutine count settles back —
// workers, HTTP handlers and event followers all exit.
func TestShutdownLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	for cycle := 0; cycle < 3; cycle++ {
		func() {
			ts := harness.StartTestServer(t, func(c *server.Config) {
				c.Workers = 2
			})
			defer ts.HTTP.Close()
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()

			st, err := ts.Submit(ctx, tinyRequest(int64(cycle)))
			if err != nil {
				t.Fatal(err)
			}
			// A follower tails the events stream while we shut down.
			done := make(chan struct{})
			go func() {
				defer close(done)
				ts.Events(ctx, st.ID, true)
			}()
			if _, err := ts.WaitTerminal(ctx, st.ID); err != nil {
				t.Fatal(err)
			}
			<-done
			sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer scancel()
			if err := ts.Server.Shutdown(sctx); err != nil {
				t.Fatalf("cycle %d shutdown: %v", cycle, err)
			}
		}()
	}

	// Give runtime-managed goroutines (timers, finished handlers) a
	// moment to unwind, mirroring internal/obs's leak check.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+3 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Errorf("goroutines: before=%d after=%d (leak)", before, runtime.NumGoroutine())
}
