package server

import (
	"fmt"
	"time"
)

// watchdog is the stuck-run detector: a background scanner that tracks
// every running job's observable progress — annealing moves and
// temperature steps from the job's live status surface, flight-recorder
// sequence numbers (one per move), and checkpointed steps — and cancels
// any job whose progress counter has not advanced for StallTimeout.
// Before canceling it dumps the job's flight recorder as a postmortem,
// so the stall site is diagnosable after the fact, and counts the
// cancellation in watchdog_cancels. The worker then marks the job
// failed (see runJob's ErrCanceled branch), not requeued: a job that
// stalled once would stall again.
type watchdog struct {
	s     *Server
	stall time.Duration
	every time.Duration
	stop  chan struct{}
	done  chan struct{}
}

func newWatchdog(s *Server, stall, every time.Duration) *watchdog {
	return &watchdog{s: s, stall: stall, every: every,
		stop: make(chan struct{}), done: make(chan struct{})}
}

func (w *watchdog) run() {
	defer close(w.done)
	tick := time.NewTicker(w.every)
	defer tick.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-tick.C:
			w.scan(time.Now())
		}
	}
}

func (w *watchdog) close() {
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	<-w.done
}

// scan compares every running job's progress counter against its last
// observed value and fires on the first job stalled past the timeout.
func (w *watchdog) scan(now time.Time) {
	w.s.mu.Lock()
	running := make([]*job, 0, 4)
	for _, j := range w.s.jobs {
		j.mu.Lock()
		if j.state == StateRunning {
			running = append(running, j)
		}
		j.mu.Unlock()
	}
	w.s.mu.Unlock()

	for _, j := range running {
		p := j.progress()
		j.mu.Lock()
		if j.state != StateRunning || j.watchdogFired {
			j.mu.Unlock()
			continue
		}
		if p != j.lastProgress || j.lastProgressAtNs == 0 {
			j.lastProgress = p
			j.lastProgressAtNs = now.UnixNano()
			j.mu.Unlock()
			continue
		}
		if now.UnixNano()-j.lastProgressAtNs < int64(w.stall) {
			j.mu.Unlock()
			continue
		}
		j.watchdogFired = true
		cancel := j.cancel
		rec := j.rec
		j.mu.Unlock()

		w.s.mWatchdogCancels.Inc()
		w.s.cfg.Logf("server: watchdog: job %s made no progress for %s; canceling", j.id, w.stall)
		if rec != nil {
			if path, derr := rec.Dump("watchdog_stall"); derr == nil && path != "" {
				w.s.cfg.Logf("server: job %s stall postmortem written to %s", j.id, path)
			}
		}
		if cancel != nil {
			cancel()
		}
	}
}

// stallError is the failure message of a watchdog-canceled job.
func stallError(stall time.Duration) string {
	return fmt.Sprintf("watchdog: no observable progress for %s; run canceled", stall)
}
