package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"irgrid/floorplan"
	"irgrid/telemetry"
)

// Job states. queued and running are live; done, failed, canceled and
// quarantined are terminal. A daemon restart re-enqueues queued and
// running jobs (running means the previous process died mid-run; the
// job resumes from its last checkpoint). quarantined marks a poison
// job taken out of service: its record failed verification at
// recovery, or it exhausted its run-attempt budget crashing workers
// (see DESIGN.md "Failure model & degraded operation").
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateCanceled    = "canceled"
	StateQuarantined = "quarantined"
)

// terminalState reports whether a job in this state will never run
// again.
func terminalState(s string) bool {
	return s == StateDone || s == StateFailed || s == StateCanceled || s == StateQuarantined
}

// Error is the API error payload carried inside the error envelope
// every non-2xx response body uses. Status is the HTTP status code
// (not serialized; the response line carries it).
type Error struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterSeconds carries a 429/503 response's Retry-After header
	// (0 when absent). Not serialized: the header is the wire form;
	// clients (the harness Client) fill it in when decoding.
	RetryAfterSeconds int `json:"-"`
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// Error codes of the job API.
const (
	CodeInvalidJSON      = "invalid_json"
	CodeInvalidRequest   = "invalid_request"
	CodeTooLarge         = "too_large"
	CodeNotFound         = "not_found"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeQueueFull        = "queue_full"
	CodeRateLimited      = "rate_limited"
	CodeNotReady         = "not_ready"
	CodeJobFailed        = "job_failed"
	CodeJobCanceled      = "job_canceled"
	CodeJobQuarantined   = "job_quarantined"
	CodeNotCancelable    = "not_cancelable"
	CodeShuttingDown     = "shutting_down"
)

// errorEnvelope is the JSON body of every non-2xx response.
type errorEnvelope struct {
	Error *Error `json:"error"`
}

// JobRequest is the POST /v1/jobs body: exactly one circuit source
// (a built-in benchmark name, YAL text, or an inline circuit) plus the
// run options. Unknown fields are rejected, so clients find typos at
// submit time instead of silently running defaults.
type JobRequest struct {
	Benchmark string      `json:"benchmark,omitempty"`
	YAL       string      `json:"yal,omitempty"`
	Circuit   *CircuitDoc `json:"circuit,omitempty"`
	Options   RunOptions  `json:"options"`
}

// CircuitDoc is an inline circuit in the job-submission JSON.
type CircuitDoc struct {
	Name    string      `json:"name"`
	Modules []ModuleDoc `json:"modules"`
	Nets    []NetDoc    `json:"nets,omitempty"`
}

// ModuleDoc mirrors floorplan.Module.
type ModuleDoc struct {
	Name      string  `json:"name"`
	W         float64 `json:"w"`
	H         float64 `json:"h"`
	Pad       bool    `json:"pad,omitempty"`
	MinAspect float64 `json:"min_aspect,omitempty"`
	MaxAspect float64 `json:"max_aspect,omitempty"`
}

// NetDoc mirrors floorplan.Net.
type NetDoc struct {
	Name string   `json:"name"`
	Pins []PinDoc `json:"pins"`
}

// PinDoc mirrors floorplan.Pin.
type PinDoc struct {
	Module string  `json:"module"`
	FX     float64 `json:"fx"`
	FY     float64 `json:"fy"`
}

// RunOptions is the JSON shape of the floorplan.Options subset a job
// may set. Server-side concerns (checkpointing, telemetry wiring) are
// not client-settable.
type RunOptions struct {
	Alpha           float64 `json:"alpha,omitempty"`
	Beta            float64 `json:"beta,omitempty"`
	Gamma           float64 `json:"gamma,omitempty"`
	Model           string  `json:"model,omitempty"`
	Pitch           float64 `json:"pitch,omitempty"`
	PinPitch        float64 `json:"pin_pitch,omitempty"`
	Seed            int64   `json:"seed,omitempty"`
	NoRotate        bool    `json:"no_rotate,omitempty"`
	MovesPerTemp    int     `json:"moves_per_temp,omitempty"`
	MaxTemps        int     `json:"max_temps,omitempty"`
	WirelengthModel string  `json:"wirelength_model,omitempty"`
	Representation  string  `json:"representation,omitempty"`
	Workers         int     `json:"workers,omitempty"`
	FullEval        bool    `json:"full_eval,omitempty"`
	// TimeoutSeconds bounds the job's wall time; on expiry the job
	// completes with outcome "deadline" and the best result so far.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
}

// jobSpec is a validated, runnable submission.
type jobSpec struct {
	req     *JobRequest
	circuit *floorplan.Circuit
	opts    floorplan.Options
	timeout time.Duration
}

// Submission caps. A floorplanning service accepts untrusted input;
// these bound memory before a queued job ever runs.
const (
	// DefaultMaxBodyBytes caps the POST /v1/jobs body.
	DefaultMaxBodyBytes = 8 << 20
	// maxModules and maxPins cap inline/YAL circuit sizes.
	maxModules = 20000
	maxPins    = 500000
)

// decodeJobRequest parses and validates a job-submission body. Every
// failure is a client error (4xx) — malformed JSON, unknown fields,
// non-finite numbers (invalid JSON by construction), oversize
// circuits, structurally broken netlists, unknown model names — so
// the decoder can never take down the daemon or return a 5xx.
func decodeJobRequest(body []byte) (*jobSpec, *Error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		return nil, &Error{Status: http.StatusBadRequest, Code: CodeInvalidJSON,
			Message: fmt.Sprintf("decoding request body: %v", err)}
	}
	// A second document after the first is junk, not a request.
	if dec.More() {
		return nil, &Error{Status: http.StatusBadRequest, Code: CodeInvalidJSON,
			Message: "request body holds more than one JSON document"}
	}
	return validateRequest(&req)
}

// validateRequest turns a decoded request into a runnable spec,
// rejecting anything floorplan.Run would reject — at submit time, with
// a 400, instead of at schedule time with a failed job.
func validateRequest(req *JobRequest) (*jobSpec, *Error) {
	badReq := func(format string, args ...any) *Error {
		return &Error{Status: http.StatusBadRequest, Code: CodeInvalidRequest,
			Message: fmt.Sprintf(format, args...)}
	}
	sources := 0
	for _, set := range []bool{req.Benchmark != "", req.YAL != "", req.Circuit != nil} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, badReq("exactly one of benchmark, yal or circuit is required")
	}

	var c *floorplan.Circuit
	switch {
	case req.Benchmark != "":
		var err error
		c, err = floorplan.Benchmark(req.Benchmark)
		if err != nil {
			return nil, badReq("unknown benchmark %q (have %s)",
				req.Benchmark, strings.Join(floorplan.BenchmarkNames(), ", "))
		}
	case req.YAL != "":
		var err error
		c, err = floorplan.LoadYAL(strings.NewReader(req.YAL))
		if err != nil {
			return nil, badReq("parsing yal circuit: %v", err)
		}
	default:
		c = circuitFromDoc(req.Circuit)
	}
	if len(c.Modules) == 0 {
		return nil, badReq("circuit has no modules")
	}
	if len(c.Modules) > maxModules {
		return nil, &Error{Status: http.StatusBadRequest, Code: CodeTooLarge,
			Message: fmt.Sprintf("circuit has %d modules, cap is %d", len(c.Modules), maxModules)}
	}
	pins := 0
	for _, n := range c.Nets {
		pins += len(n.Pins)
	}
	if pins > maxPins {
		return nil, &Error{Status: http.StatusBadRequest, Code: CodeTooLarge,
			Message: fmt.Sprintf("circuit has %d pins, cap is %d", pins, maxPins)}
	}
	if err := c.Validate(); err != nil {
		return nil, badReq("invalid circuit: %v", err)
	}

	o := &req.Options
	opts := floorplan.Options{
		Alpha: o.Alpha, Beta: o.Beta, Gamma: o.Gamma,
		PinPitch:        o.PinPitch,
		Seed:            o.Seed,
		NoRotate:        o.NoRotate,
		MovesPerTemp:    o.MovesPerTemp,
		MaxTemps:        o.MaxTemps,
		WirelengthModel: o.WirelengthModel,
		Representation:  o.Representation,
		Workers:         o.Workers,
		FullEval:        o.FullEval,
	}
	if o.Model != "" || o.Gamma != 0 {
		opts.Congestion = floorplan.Congestion{Model: o.Model, Pitch: o.Pitch}
	}
	if err := floorplan.ValidateOptions(opts); err != nil {
		return nil, badReq("invalid options: %v", err)
	}
	if o.TimeoutSeconds < 0 || o.TimeoutSeconds != o.TimeoutSeconds {
		return nil, badReq("timeout_seconds must be non-negative, got %g", o.TimeoutSeconds)
	}
	return &jobSpec{
		req:     req,
		circuit: c,
		opts:    opts,
		timeout: time.Duration(o.TimeoutSeconds * float64(time.Second)),
	}, nil
}

func circuitFromDoc(doc *CircuitDoc) *floorplan.Circuit {
	c := &floorplan.Circuit{Name: doc.Name}
	for _, m := range doc.Modules {
		c.Modules = append(c.Modules, floorplan.Module{
			Name: m.Name, W: m.W, H: m.H, Pad: m.Pad,
			MinAspect: m.MinAspect, MaxAspect: m.MaxAspect,
		})
	}
	for _, n := range doc.Nets {
		net := floorplan.Net{Name: n.Name}
		for _, p := range n.Pins {
			net.Pins = append(net.Pins, floorplan.Pin{Module: p.Module, FX: p.FX, FY: p.FY})
		}
		c.Nets = append(c.Nets, net)
	}
	return c
}

// JobStatus is the GET /v1/jobs/{id} document (and the body of the
// 202 submission response).
type JobStatus struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Circuit string `json:"circuit"`
	Seed    int64  `json:"seed"`
	// QueuePosition is the 1-based position among queued jobs; 0 when
	// not queued.
	QueuePosition int `json:"queue_position,omitempty"`
	// Resumes counts how many times the job continued from a
	// checkpoint (daemon restarts and drain/restart cycles).
	Resumes int `json:"resumes,omitempty"`
	// CheckpointStep is the last checkpointed temperature step of the
	// current process's run; 0 before the first snapshot.
	CheckpointStep int `json:"checkpoint_step,omitempty"`
	// Attempts counts run starts (first run, restarts after daemon
	// crashes, panic retries). At Config.MaxAttempts the job is
	// quarantined instead of run again.
	Attempts int `json:"attempts,omitempty"`
	// Outcome is set on terminal jobs: completed|canceled|deadline|error.
	Outcome string `json:"outcome,omitempty"`
	Error   string `json:"error,omitempty"`
	// CreatedUnixNs/StartedUnixNs/FinishedUnixNs are wall-clock
	// timestamps; zero when the phase has not happened.
	CreatedUnixNs  int64 `json:"created_unix_ns"`
	StartedUnixNs  int64 `json:"started_unix_ns,omitempty"`
	FinishedUnixNs int64 `json:"finished_unix_ns,omitempty"`
	// Spans holds the job's span-forest aggregates once terminal (the
	// same forest the trace's spans event carries).
	Spans []telemetry.SpanAggregate `json:"spans,omitempty"`
}

// JobResult is the GET /v1/jobs/{id}/result document: the
// floorplan.Result fields that are deterministic for a fixed request
// (bit-identical to a direct floorplan.Run with the same options)
// plus volatile server metadata.
type JobResult struct {
	Circuit          string                   `json:"circuit"`
	ChipW            float64                  `json:"chip_w"`
	ChipH            float64                  `json:"chip_h"`
	Area             float64                  `json:"area"`
	Wirelength       float64                  `json:"wirelength"`
	CongestionCost   float64                  `json:"congestion_cost"`
	Cost             float64                  `json:"cost"`
	Modules          []floorplan.PlacedModule `json:"modules"`
	Temperatures     int                      `json:"temperatures"`
	Moves            int                      `json:"moves"`
	CalibrationMoves int                      `json:"calibration_moves"`
	Accepted         int                      `json:"accepted"`
	// Outcome records how the run ended: completed or deadline (a
	// timeboxed job reports its best floorplan so far).
	Outcome string `json:"outcome"`
	// RuntimeSeconds and Resumes are volatile server metadata, not
	// part of the deterministic payload.
	RuntimeSeconds float64 `json:"runtime_seconds"`
	Resumes        int     `json:"resumes,omitempty"`
}

func resultDoc(res *floorplan.Result, outcome string, resumes int) *JobResult {
	return &JobResult{
		Circuit:          res.Circuit,
		ChipW:            res.ChipW,
		ChipH:            res.ChipH,
		Area:             res.Area,
		Wirelength:       res.Wirelength,
		CongestionCost:   res.CongestionCost,
		Cost:             res.Cost,
		Modules:          res.Modules,
		Temperatures:     res.Temperatures,
		Moves:            res.Moves,
		CalibrationMoves: res.CalibrationMoves,
		Accepted:         res.Accepted,
		Outcome:          outcome,
		RuntimeSeconds:   res.Runtime.Seconds(),
		Resumes:          resumes,
	}
}

// job is one submission's live state. The mutex guards every mutable
// field; disk writes happen outside it where possible.
type job struct {
	mu sync.Mutex

	id   string
	dir  string
	spec *jobSpec

	// The job lifecycle, declared for the statemachine analyzer: a job
	// is born queued; running may return to queued (a drain or daemon
	// crash re-enqueues it to resume from its checkpoint); done, failed,
	// canceled and quarantined are terminal. Every assignment site must
	// perform one of these transitions.
	//
	//irlint:states queued running done failed canceled quarantined
	//irlint:initial queued
	//irlint:terminal done failed canceled quarantined
	//irlint:transition queued -> running canceled quarantined
	//irlint:transition running -> done failed canceled queued quarantined
	state    string
	created  int64
	started  int64
	finished int64
	errMsg   string
	outcome  string
	resumes  int
	ckptStep int
	attempts int

	cancelRequested bool
	cancel          func()

	spans []telemetry.SpanAggregate

	// rec/live are the current run's flight recorder and live status
	// surface; nil while not running. The watchdog derives the job's
	// progress counter from them, and quarantine/stall paths dump the
	// recorder as a postmortem.
	rec  *telemetry.Recorder
	live *telemetry.Status

	// Watchdog bookkeeping: the last observed progress counter, when it
	// was observed, and whether the watchdog already canceled this run.
	lastProgress     int64
	lastProgressAtNs int64
	watchdogFired    bool

	// result is the in-memory terminal result (authoritative for
	// serving; result.json is the durable copy). resultDirty/dirty/
	// quarDirty mark records held in memory while the store was
	// degraded, to be rewritten by the heal flush.
	result      *JobResult
	dirty       bool
	resultDirty bool
	quarDoc     *quarantineDoc
	quarDirty   bool

	// done is closed when the job reaches a terminal state, releasing
	// events followers and Wait-style helpers.
	done chan struct{}
}

func newJob(id, dir string, spec *jobSpec, now int64) *job {
	return &job{
		id: id, dir: dir, spec: spec,
		state:   StateQueued,
		created: now,
		done:    make(chan struct{}),
	}
}

// status snapshots the job document. queuePos is computed by the
// server (0 when unknown/not queued). A job quarantined at recovery
// for a corrupt record has no spec; its document carries the
// quarantine reason with no circuit identity.
func (j *job) status(queuePos int) *JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := &JobStatus{
		ID:             j.id,
		State:          j.state,
		QueuePosition:  queuePos,
		Resumes:        j.resumes,
		CheckpointStep: j.ckptStep,
		Attempts:       j.attempts,
		Outcome:        j.outcome,
		Error:          j.errMsg,
		CreatedUnixNs:  j.created,
		StartedUnixNs:  j.started,
		FinishedUnixNs: j.finished,
	}
	if j.spec != nil {
		st.Circuit = j.spec.circuit.Name
		st.Seed = j.spec.opts.Seed
	}
	if terminalState(j.state) {
		st.Spans = j.spans
	}
	return st
}

// progress derives the job's observable-progress counter for the
// watchdog: checkpointed steps plus live status moves/steps plus
// flight-recorder sequence numbers. Any annealing move advances it
// (the recorder records per move), so a healthy run can never look
// stalled; a run wedged anywhere — before its first move, inside a
// move, or after its last — holds it constant.
func (j *job) progress() int64 {
	j.mu.Lock()
	rec, live := j.rec, j.live
	p := int64(j.ckptStep)
	j.mu.Unlock()
	if live != nil {
		snap := live.Snapshot()
		p += snap.Moves + int64(snap.Step)
	}
	if rec != nil {
		p += rec.Seq()
	}
	return p
}

// persistedJob is the job.json payload: everything a restarted daemon
// needs to rebuild the job, including the original request so it can
// be re-validated and re-run.
type persistedJob struct {
	ID             string      `json:"id"`
	State          string      `json:"state"`
	Request        *JobRequest `json:"request"`
	CreatedUnixNs  int64       `json:"created_unix_ns"`
	StartedUnixNs  int64       `json:"started_unix_ns,omitempty"`
	FinishedUnixNs int64       `json:"finished_unix_ns,omitempty"`
	Outcome        string      `json:"outcome,omitempty"`
	Error          string      `json:"error,omitempty"`
	Resumes        int         `json:"resumes,omitempty"`
	// Attempts persists the crash-loop counter: it is written at every
	// run start, so a daemon that dies mid-run still knows on restart
	// how many times this job has been tried. Absent in records written
	// before the field existed (same format version: optional field).
	Attempts int `json:"attempts,omitempty"`
}

func (j *job) persisted() *persistedJob {
	j.mu.Lock()
	defer j.mu.Unlock()
	pj := &persistedJob{
		ID:             j.id,
		State:          j.state,
		CreatedUnixNs:  j.created,
		StartedUnixNs:  j.started,
		FinishedUnixNs: j.finished,
		Outcome:        j.outcome,
		Error:          j.errMsg,
		Resumes:        j.resumes,
		Attempts:       j.attempts,
	}
	if j.spec != nil {
		pj.Request = j.spec.req
	}
	return pj
}

// errJobCorrupt marks an on-disk job directory whose job.json does not
// verify; the daemon skips it rather than refusing to start.
var errJobCorrupt = errors.New("server: corrupt job record")
