package server

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"irgrid/internal/ckpt"
	"irgrid/telemetry"
)

// StoreError wraps a durable-store failure with the operation and path
// that failed. Every persistence error the server acts on (degrade,
// dirty-record tracking) is a *StoreError, so callers branch on the
// type and logs carry the failing file.
type StoreError struct {
	Op   string // "mkdir" | "write"
	Path string
	Err  error
}

func (e *StoreError) Error() string {
	return fmt.Sprintf("store %s %s: %v", e.Op, e.Path, e.Err)
}

func (e *StoreError) Unwrap() error { return e.Err }

// Probe-file envelope identifiers. The probe is a throwaway record the
// degraded store writes periodically to detect that the disk came
// back.
const (
	probeMagic   = "irgrid-store-probe"
	probeVersion = 1
)

type probeDoc struct {
	WrittenUnixNs int64 `json:"written_unix_ns"`
}

// storeConfig parameterizes a store; every field is required (the
// server's Config.fill supplies defaults).
type storeConfig struct {
	probePath  string
	attempts   int           // write attempts per save (>= 1)
	baseDelay  time.Duration // first retry backoff; doubles per retry, ±50% jitter
	probeEvery time.Duration // degraded-mode re-probe period
	logf       func(format string, args ...any)
	onHeal     func() // called (off the probe goroutine) after a successful heal

	retries  *telemetry.Counter // store_write_retries
	degraded *telemetry.Gauge   // store_degraded (0|1)
}

// store is the server's durable-write layer: every record write goes
// through save, which retries transient failures with jittered
// exponential backoff and reports persistent ones as *StoreError.
//
// The store is also the degraded-mode state machine. On a persistent
// write failure the server calls degrade: the store flips to degraded
// (store_degraded=1), and a background loop re-probes the disk by
// writing a throwaway envelope every probeEvery. When a probe lands,
// the store flips back to durable and invokes onHeal so the server can
// flush every record held in memory while the disk was gone. While
// degraded, save makes a single attempt per call (the probe loop owns
// recovery; per-write retry storms would only add latency).
type store struct {
	cfg storeConfig

	mu      sync.Mutex
	rnd     *rand.Rand
	isDown  bool
	reason  string
	sinceNs int64
	probing bool
	closed  bool
	stop    chan struct{}
	probeWG sync.WaitGroup
}

func newStore(cfg storeConfig) *store {
	return &store{
		cfg:  cfg,
		rnd:  rand.New(rand.NewSource(time.Now().UnixNano())),
		stop: make(chan struct{}),
	}
}

// save writes one envelope durably, retrying transient failures. The
// returned error (nil on success) is always a *StoreError; the caller
// decides whether it warrants degrading (it does for every record the
// service promised to keep).
func (st *store) save(path, magic string, version int, payload any) error {
	tries := st.cfg.attempts
	if down, _, _ := st.state(); down {
		tries = 1
	}
	var last error
	for i := 0; i < tries; i++ {
		if i > 0 {
			st.cfg.retries.Inc()
			time.Sleep(st.backoff(i))
		}
		if last = ckpt.SaveAs(path, magic, version, payload); last == nil {
			return nil
		}
	}
	return &StoreError{Op: "write", Path: path, Err: last}
}

// backoff returns the i-th retry delay: baseDelay doubling per retry,
// with ±50% jitter so a burst of failing writers decorrelates.
func (st *store) backoff(i int) time.Duration {
	d := st.cfg.baseDelay << (i - 1)
	st.mu.Lock()
	j := st.rnd.Int63n(int64(d) + 1)
	st.mu.Unlock()
	return d/2 + time.Duration(j)
}

// degrade records that the disk is failing persistently and starts the
// re-probe loop (idempotent while already degraded).
func (st *store) degrade(err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return
	}
	if !st.isDown {
		st.isDown = true
		st.reason = err.Error()
		st.sinceNs = time.Now().UnixNano()
		st.cfg.degraded.Set(1)
		st.cfg.logf("server: store degraded (%v); jobs continue in memory, re-probing disk every %s",
			err, st.cfg.probeEvery)
	}
	if !st.probing {
		st.probing = true
		st.probeWG.Add(1)
		go st.probeLoop()
	}
}

// state reports (degraded, reason, degraded-since ns).
func (st *store) state() (bool, string, int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.isDown, st.reason, st.sinceNs
}

// probeLoop writes the probe file until one write lands, then heals
// the store and hands control to onHeal for the dirty-record flush.
func (st *store) probeLoop() {
	defer st.probeWG.Done()
	tick := time.NewTicker(st.cfg.probeEvery)
	defer tick.Stop()
	for {
		select {
		case <-st.stop:
			return
		case <-tick.C:
		}
		err := ckpt.SaveAs(st.probePath(), probeMagic, probeVersion,
			probeDoc{WrittenUnixNs: time.Now().UnixNano()})
		if err != nil {
			continue
		}
		st.mu.Lock()
		st.isDown = false
		st.reason = ""
		st.sinceNs = 0
		st.probing = false
		st.cfg.degraded.Set(0)
		st.mu.Unlock()
		st.cfg.logf("server: store healed; flushing records held in memory")
		if st.cfg.onHeal != nil {
			st.cfg.onHeal()
		}
		return
	}
}

func (st *store) probePath() string { return st.cfg.probePath }

// close stops the probe loop. Saves issued after close still work (the
// final shutdown flush uses them); only degrade becomes a no-op.
func (st *store) close() {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	st.closed = true
	close(st.stop)
	st.mu.Unlock()
	st.probeWG.Wait()
}
