package server_test

import (
	"context"
	"testing"
	"time"

	"irgrid/floorplan"
	"irgrid/internal/server"
	"irgrid/internal/server/harness"
	"irgrid/telemetry"
)

// testRequest is the standard small-but-real job every e2e test
// submits: the golden suite's fixed schedule on a named benchmark.
func testRequest(bench string, seed int64) *server.JobRequest {
	return &server.JobRequest{
		Benchmark: bench,
		Options: server.RunOptions{
			Alpha: 0.4, Beta: 0.2, Gamma: 0.4,
			Model: floorplan.ModelIRGrid, Pitch: 30,
			Seed:         seed,
			MovesPerTemp: 20,
			MaxTemps:     15,
		},
	}
}

// directOptions mirrors testRequest as floorplan.Options for the
// reference run.
func directOptions(seed int64) floorplan.Options {
	return floorplan.Options{
		Alpha: 0.4, Beta: 0.2, Gamma: 0.4,
		Congestion:   floorplan.Congestion{Model: floorplan.ModelIRGrid, Pitch: 30},
		Seed:         seed,
		MovesPerTemp: 20,
		MaxTemps:     15,
	}
}

// assertResultMatchesDirect proves the service computed exactly what
// a direct library call computes: every deterministic field of the
// result — chip metrics, costs, and each placed rectangle — must be
// bit-identical (float64 == is bitwise for non-NaN values, and JSON
// round-trips float64 exactly).
func assertResultMatchesDirect(t *testing.T, got *server.JobResult, want *floorplan.Result) {
	t.Helper()
	if got.Circuit != want.Circuit {
		t.Errorf("circuit = %q, want %q", got.Circuit, want.Circuit)
	}
	pairs := []struct {
		name     string
		got, want float64
	}{
		{"chip_w", got.ChipW, want.ChipW},
		{"chip_h", got.ChipH, want.ChipH},
		{"area", got.Area, want.Area},
		{"wirelength", got.Wirelength, want.Wirelength},
		{"congestion_cost", got.CongestionCost, want.CongestionCost},
		{"cost", got.Cost, want.Cost},
	}
	for _, p := range pairs {
		if p.got != p.want {
			t.Errorf("%s = %v, want %v (not bit-identical)", p.name, p.got, p.want)
		}
	}
	if got.Temperatures != want.Temperatures || got.Moves != want.Moves ||
		got.CalibrationMoves != want.CalibrationMoves || got.Accepted != want.Accepted {
		t.Errorf("schedule stats = (%d,%d,%d,%d), want (%d,%d,%d,%d)",
			got.Temperatures, got.Moves, got.CalibrationMoves, got.Accepted,
			want.Temperatures, want.Moves, want.CalibrationMoves, want.Accepted)
	}
	if len(got.Modules) != len(want.Modules) {
		t.Fatalf("placed %d modules, want %d", len(got.Modules), len(want.Modules))
	}
	for i, m := range got.Modules {
		w := want.Modules[i]
		if m != w {
			t.Errorf("module %d = %+v, want %+v", i, m, w)
		}
	}
}

// TestSubmitPollResultBitIdentical is the service's core contract:
// a job submitted over HTTP returns, bit for bit, the result of a
// direct floorplan.Run with the same circuit, options and seed.
func TestSubmitPollResultBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("anneals two benchmarks end to end")
	}
	ts := harness.StartTestServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	for _, bench := range []string{"apte", "ami33"} {
		st, err := ts.Submit(ctx, testRequest(bench, 7))
		if err != nil {
			t.Fatalf("%s: submit: %v", bench, err)
		}
		if st.State != server.StateQueued {
			t.Errorf("%s: accepted state = %q, want queued", bench, st.State)
		}
		final, err := ts.WaitTerminal(ctx, st.ID)
		if err != nil {
			t.Fatalf("%s: wait: %v", bench, err)
		}
		if final.State != server.StateDone || final.Outcome != telemetry.OutcomeCompleted {
			t.Fatalf("%s: final state %q outcome %q error %q, want done/completed",
				bench, final.State, final.Outcome, final.Error)
		}
		got, err := ts.Result(ctx, st.ID)
		if err != nil {
			t.Fatalf("%s: result: %v", bench, err)
		}

		c, err := floorplan.Benchmark(bench)
		if err != nil {
			t.Fatal(err)
		}
		want, err := floorplan.Run(c, directOptions(7))
		if err != nil {
			t.Fatal(err)
		}
		assertResultMatchesDirect(t, got, want)
	}
}

// TestEventsStreamCarriesRunTrace pins the /events surface: a
// finished job's stream decodes as the run tracer's JSONL — a
// run_start..run_end block with per-temperature events and the span
// forest between them.
func TestEventsStreamCarriesRunTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("anneals a benchmark end to end")
	}
	ts := harness.StartTestServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	st, err := ts.Submit(ctx, testRequest("apte", 3))
	if err != nil {
		t.Fatal(err)
	}
	// follow=1 tails the live trace until the job is terminal.
	recs, err := ts.Events(ctx, st.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("followed events stream is empty")
	}
	count := map[string]int{}
	for _, r := range recs {
		count[r.Ev]++
	}
	for _, ev := range []string{telemetry.EvRunStart, telemetry.EvTemp, telemetry.EvSpans, telemetry.EvRunEnd} {
		if count[ev] == 0 {
			t.Errorf("events stream missing %q (got %v)", ev, count)
		}
	}
	if recs[len(recs)-1].Ev != telemetry.EvRunEnd {
		t.Errorf("last event = %q, want run_end", recs[len(recs)-1].Ev)
	}

	// The job's terminal status carries its span forest.
	final, err := ts.WaitTerminal(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Spans) == 0 {
		t.Error("terminal status has no span aggregates")
	}
}
