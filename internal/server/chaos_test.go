package server_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"irgrid/floorplan"
	"irgrid/internal/ckpt"
	"irgrid/internal/faultinject"
	"irgrid/internal/server"
	"irgrid/internal/server/harness"
	"irgrid/telemetry"
)

// The chaos battery is the CrashMonkey-style proof of the service's
// storage-fault contract: every registered faultinject.Point is
// exercised against a live server, and under each injected failure no
// accepted job is lost, no result is torn or duplicated, and a healed
// restart serves bits identical to a direct library run.
//
// Tests here arm process-global hooks, so none of them run parallel.

// waitMetric polls reg until the named instrument reads want (exact)
// or the deadline passes.
func waitMetric(t *testing.T, reg *telemetry.Registry, name string, want float64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var got float64
	for time.Now().Before(deadline) {
		got = reg.Snapshot()[name]
		if got == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("metric %s = %v, want %v (after %s)", name, got, want, timeout)
}

// waitState polls a job until it reaches exactly state — unlike
// WaitTerminal (which accepts any terminal state, quarantined
// included) it pins the specific outcome under test.
func waitState(ctx context.Context, t *testing.T, c *harness.Client, id, state string) *server.JobStatus {
	t.Helper()
	st, err := c.WaitStatus(ctx, id, func(st *server.JobStatus) bool {
		return st.State == state
	})
	if err != nil {
		t.Fatalf("waiting for job %s to reach %q: %v", id, state, err)
	}
	return st
}

// directReference runs the same job testRequest(bench, seed) describes
// through the library, for bit-identity assertions.
func directReference(t *testing.T, bench string, seed int64) *floorplan.Result {
	t.Helper()
	c, err := floorplan.Benchmark(bench)
	if err != nil {
		t.Fatal(err)
	}
	want, err := floorplan.Run(c, directOptions(seed))
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// chaosServer boots a server tuned for fault drills: fast store
// retries, fast disk re-probe, and a registry the test owns so metric
// assertions survive restarts (Restart reuses the same Config).
func chaosServer(t *testing.T, opts ...func(*server.Config)) (*harness.TestServer, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	ts := harness.StartTestServer(t, append([]func(*server.Config){func(c *server.Config) {
		c.Obs = reg
		c.StoreRetryDelay = time.Millisecond
		c.ProbeEvery = 25 * time.Millisecond
	}}, opts...)...)
	return ts, reg
}

// TestFaultMatrixCoversAllRegisteredPoints is the matrix driver: it
// iterates every Point the faultinject registry declares and runs its
// scenario. A newly registered point without a scenario fails the
// test, so new fault sites cannot ship unexercised; a scenario whose
// hook never fired fails too, so a seam that silently stopped firing
// is caught.
func TestFaultMatrixCoversAllRegisteredPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a server per fault point")
	}
	scenarios := map[faultinject.Point]func(*testing.T) int64{
		faultinject.FSCreate:      func(t *testing.T) int64 { return writeFaultScenario(t, faultinject.FSCreate, 31) },
		faultinject.FSWrite:       func(t *testing.T) int64 { return writeFaultScenario(t, faultinject.FSWrite, 32) },
		faultinject.FSSync:        func(t *testing.T) int64 { return writeFaultScenario(t, faultinject.FSSync, 33) },
		faultinject.FSRename:      func(t *testing.T) int64 { return writeFaultScenario(t, faultinject.FSRename, 34) },
		faultinject.FSTornWrite:   func(t *testing.T) int64 { return writeFaultScenario(t, faultinject.FSTornWrite, 35) },
		faultinject.FSRead:        readFaultScenario,
		faultinject.FSCorruptRead: corruptReadScenario,
		faultinject.JobRun:        jobRunFaultScenario,
		// The incremental engine bypasses the parallel evaluator; full
		// evaluation with Workers > 1 drives the sharded path the
		// eval.shard seam lives on (bit-identical either way).
		faultinject.EvalShard: func(t *testing.T) int64 {
			req := testRequest("apte", 47)
			req.Options.FullEval = true
			req.Options.Workers = 2
			return observeScenario(t, faultinject.EvalShard, req)
		},
		faultinject.CheckpointWrite: func(t *testing.T) int64 {
			return observeScenario(t, faultinject.CheckpointWrite, testRequest("apte", 47))
		},
	}
	for _, p := range faultinject.Points() {
		sc, ok := scenarios[p]
		if !ok {
			t.Errorf("registered fault point %q (%s) has no chaos scenario — add one to the matrix",
				p, faultinject.Doc(p))
			continue
		}
		t.Run(string(p), func(t *testing.T) {
			defer faultinject.Reset()
			if fired := sc(t); fired == 0 {
				t.Fatalf("fault point %q was never fired by its scenario — the seam is dead", p)
			}
		})
	}
}

// writeFaultScenario drills one fs write-path point: with every
// envelope write under the state dir failing at that point, a
// submitted job is still accepted, still runs to done, and its result
// is served from memory; disarming the fault lets the probe loop heal
// the store, and a restart then serves the identical result from the
// flushed durable records.
func writeFaultScenario(t *testing.T, point faultinject.Point, seed int64) int64 {
	ts, reg := chaosServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var fired atomic.Int64
	faultinject.SetPath(func(p faultinject.Point, path string, _ int) error {
		if p == point && strings.HasPrefix(path, ts.StateDir) {
			fired.Add(1)
			return errors.New("injected EIO")
		}
		return nil
	})
	defer faultinject.Reset()

	st, err := ts.Submit(ctx, testRequest("apte", seed))
	if err != nil {
		t.Fatalf("submit with %s failing: %v", point, err)
	}
	fin, err := ts.WaitTerminal(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != server.StateDone {
		t.Fatalf("job under %s fault finished %q (%s), want done", point, fin.State, fin.Error)
	}
	// The result is real and servable even though the disk is gone.
	if _, err := ts.Result(ctx, st.ID); err != nil {
		t.Fatalf("result while degraded: %v", err)
	}
	snap := reg.Snapshot()
	if snap["store_degraded"] != 1 {
		t.Errorf("store_degraded = %v while every write fails, want 1", snap["store_degraded"])
	}
	if snap["store_write_retries"] == 0 {
		t.Error("store_write_retries = 0, want retries before degrading")
	}

	// Disarm: the next probe heals the store and flushes the records.
	faultinject.Reset()
	waitMetric(t, reg, "store_degraded", 0, 5*time.Second)

	// A restart over the healed store recovers the job from the flushed
	// records and serves the identical bits.
	ts = ts.Restart(t)
	fin, err = ts.WaitTerminal(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != server.StateDone {
		t.Fatalf("recovered job state %q, want done", fin.State)
	}
	got, err := ts.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("result after heal+restart: %v", err)
	}
	assertResultMatchesDirect(t, got, directReference(t, "apte", seed))
	return fired.Load()
}

// readFaultScenario drills fs.read: a done job whose job.json cannot
// be read at recovery is quarantined as a tombstone rather than
// silently vanishing — and because the quarantine never destroys the
// record, a later restart with the disk healthy restores the job and
// its exact result. Transient read faults self-heal.
func readFaultScenario(t *testing.T) int64 {
	ts, reg := chaosServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	st, err := ts.Submit(ctx, testRequest("apte", 41))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ts.WaitTerminal(ctx, st.ID); err != nil {
		t.Fatal(err)
	}

	var fired atomic.Int64
	faultinject.SetPath(func(p faultinject.Point, path string, _ int) error {
		if p == faultinject.FSRead && strings.HasPrefix(path, ts.StateDir) &&
			strings.HasSuffix(path, "job.json") {
			fired.Add(1)
			return errors.New("injected EIO on read")
		}
		return nil
	})
	defer faultinject.Reset()

	ts = ts.Restart(t)
	q := waitState(ctx, t, ts.Client, st.ID, server.StateQuarantined)
	if !strings.Contains(q.Error, "quarantined at recovery") {
		t.Errorf("quarantine reason = %q, want a recovery-scan reason", q.Error)
	}
	if n := reg.Snapshot()["jobs_quarantined"]; n != 1 {
		t.Errorf("jobs_quarantined = %v, want 1", n)
	}

	// Disk healthy again: the record verifies, the job comes back whole.
	faultinject.Reset()
	ts = ts.Restart(t)
	fin := waitState(ctx, t, ts.Client, st.ID, server.StateDone)
	if fin.Outcome != telemetry.OutcomeCompleted {
		t.Errorf("restored job outcome = %q, want completed", fin.Outcome)
	}
	got, err := ts.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("result after transient read fault healed: %v", err)
	}
	assertResultMatchesDirect(t, got, directReference(t, "apte", 41))
	return fired.Load()
}

// corruptReadScenario drills fs.corrupt-read: bit rot in job.json is
// detected by the envelope checksum at recovery, the job is
// quarantined with the damage preserved, and — the corruption being in
// the read path, not on disk — a later clean restart restores it.
func corruptReadScenario(t *testing.T) int64 {
	ts, reg := chaosServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	st, err := ts.Submit(ctx, testRequest("apte", 43))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ts.WaitTerminal(ctx, st.ID); err != nil {
		t.Fatal(err)
	}

	var fired atomic.Int64
	faultinject.SetRead(func(p faultinject.Point, path string, data []byte) ([]byte, error) {
		if strings.HasPrefix(path, ts.StateDir) && strings.HasSuffix(path, "job.json") && len(data) > 0 {
			fired.Add(1)
			rot := append([]byte(nil), data...)
			rot[len(rot)/2] ^= 0xff
			return rot, nil
		}
		return data, nil
	})
	defer faultinject.Reset()

	ts = ts.Restart(t)
	waitState(ctx, t, ts.Client, st.ID, server.StateQuarantined)
	if n := reg.Snapshot()["jobs_quarantined"]; n != 1 {
		t.Errorf("jobs_quarantined = %v, want 1", n)
	}

	faultinject.Reset()
	ts = ts.Restart(t)
	waitState(ctx, t, ts.Client, st.ID, server.StateDone)
	got, err := ts.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("result after bit-rot healed: %v", err)
	}
	assertResultMatchesDirect(t, got, directReference(t, "apte", 43))
	return fired.Load()
}

// jobRunFaultScenario drills job.run's error contract: an injected
// immediate run failure is terminal (failed, not retried), carries the
// injected message, and survives a restart.
func jobRunFaultScenario(t *testing.T) int64 {
	ts, _ := chaosServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var fired atomic.Int64
	faultinject.SetPath(func(p faultinject.Point, path string, _ int) error {
		if p == faultinject.JobRun {
			fired.Add(1)
			return errors.New("injected immediate run failure")
		}
		return nil
	})
	defer faultinject.Reset()

	st, err := ts.Submit(ctx, tinyRequest(45))
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(ctx, t, ts.Client, st.ID, server.StateFailed)
	if !strings.Contains(fin.Error, "injected immediate run failure") {
		t.Errorf("failure message = %q, want the injected error", fin.Error)
	}

	faultinject.Reset()
	ts = ts.Restart(t)
	fin = waitState(ctx, t, ts.Client, st.ID, server.StateFailed)
	if !strings.Contains(fin.Error, "injected immediate run failure") {
		t.Errorf("failure message after restart = %q, want the injected error preserved", fin.Error)
	}
	return fired.Load()
}

// observeScenario proves a point that other packages' tests drill in
// depth (shard crashes in internal/core, checkpoint I/O in
// internal/ckpt) actually fires on the service's hot path: a counting
// no-op hook sees it during a normal job.
func observeScenario(t *testing.T, point faultinject.Point, req *server.JobRequest) int64 {
	ts, _ := chaosServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var fired atomic.Int64
	faultinject.Set(func(p faultinject.Point, _ int) error {
		if p == point {
			fired.Add(1)
		}
		return nil
	})
	defer faultinject.Reset()

	st, err := ts.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if fin, err := ts.WaitTerminal(ctx, st.ID); err != nil || fin.State != server.StateDone {
		t.Fatalf("observed job ended (%v, %v), want done", fin, err)
	}
	return fired.Load()
}

// TestTornJobRecordQuarantinedOnRestart is the torn-write recovery
// drill without any hook in the read path: the on-disk job.json is
// physically truncated to half (what a crash mid-write leaves on a
// filesystem without atomic rename), and the restarted daemon must
// quarantine the directory — preserving the offending bytes in
// quarantine.json for inspection — instead of crashing or silently
// dropping the job. A second restart keeps the quarantine stable
// without re-counting it.
func TestTornJobRecordQuarantinedOnRestart(t *testing.T) {
	ts, reg := chaosServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	st, err := ts.Submit(ctx, tinyRequest(51))
	if err != nil {
		t.Fatal(err)
	}
	if fin, err := ts.WaitTerminal(ctx, st.ID); err != nil || fin.State != server.StateDone {
		t.Fatalf("job ended (%v, %v), want done", fin, err)
	}

	// Tear the record in place. The job is terminal, so nothing will
	// rewrite it before the restart reads it.
	recPath := filepath.Join(ts.StateDir, "jobs", st.ID, "job.json")
	whole, err := os.ReadFile(recPath)
	if err != nil {
		t.Fatal(err)
	}
	torn := whole[:len(whole)/2]
	if err := os.WriteFile(recPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	ts = ts.Restart(t)
	q := waitState(ctx, t, ts.Client, st.ID, server.StateQuarantined)
	if !strings.Contains(q.Error, "quarantined at recovery") {
		t.Errorf("quarantine reason = %q, want a recovery-scan reason", q.Error)
	}
	if _, err := ts.Result(ctx, st.ID); err == nil {
		t.Error("result of a quarantined job succeeded, want 409")
	} else {
		var apiErr *server.Error
		if !errors.As(err, &apiErr) || apiErr.Code != server.CodeJobQuarantined {
			t.Errorf("result of quarantined job = %v, want %s", err, server.CodeJobQuarantined)
		}
	}

	// quarantine.json preserves the exact torn bytes.
	var doc struct {
		ID             string `json:"id"`
		Reason         string `json:"reason"`
		OffendingFile  string `json:"offending_file"`
		OffendingBytes []byte `json:"offending_bytes"`
	}
	qPath := filepath.Join(ts.StateDir, "jobs", st.ID, "quarantine.json")
	if err := ckpt.LoadAs(qPath, "irgrid-quarantine", 1, &doc); err != nil {
		t.Fatalf("quarantine.json does not verify: %v", err)
	}
	if doc.ID != st.ID || doc.OffendingFile != recPath {
		t.Errorf("quarantine doc = {id %q, file %q}, want {%q, %q}", doc.ID, doc.OffendingFile, st.ID, recPath)
	}
	if string(doc.OffendingBytes) != string(torn) {
		t.Errorf("offending bytes (%d) differ from the torn record (%d)", len(doc.OffendingBytes), len(torn))
	}
	if n := reg.Snapshot()["jobs_quarantined"]; n != 1 {
		t.Errorf("jobs_quarantined = %v, want 1", n)
	}

	// Restart again: the quarantine is stable (rebuilt from
	// quarantine.json, not re-counted) and the torn file is untouched.
	ts = ts.Restart(t)
	waitState(ctx, t, ts.Client, st.ID, server.StateQuarantined)
	if n := reg.Snapshot()["jobs_quarantined"]; n != 1 {
		t.Errorf("jobs_quarantined after second restart = %v, want still 1", n)
	}
	if after, err := os.ReadFile(recPath); err != nil || string(after) != string(torn) {
		t.Errorf("torn job.json was modified by recovery (err %v); it must be preserved for inspection", err)
	}
}

// TestPoisonJobQuarantinedAfterRetries is the crash-loop killer drill:
// a job that panics its worker on every attempt is retried up to
// MaxAttempts, then quarantined with a postmortem — and a healthy job
// sharing the queue is unharmed.
func TestPoisonJobQuarantinedAfterRetries(t *testing.T) {
	ts, reg := chaosServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Job IDs are allocated in accept order on a fresh store, so the
	// poison job is deterministically j00000001.
	const poisonID = "j00000001"
	faultinject.SetPath(func(p faultinject.Point, path string, _ int) error {
		if p == faultinject.JobRun && path == poisonID {
			panic("injected poison-job crash")
		}
		return nil
	})
	defer faultinject.Reset()

	poison, err := ts.Submit(ctx, tinyRequest(61))
	if err != nil {
		t.Fatal(err)
	}
	if poison.ID != poisonID {
		t.Fatalf("first job got id %q, want %q", poison.ID, poisonID)
	}
	healthy, err := ts.Submit(ctx, tinyRequest(62))
	if err != nil {
		t.Fatal(err)
	}

	q := waitState(ctx, t, ts.Client, poison.ID, server.StateQuarantined)
	if q.Attempts != 3 {
		t.Errorf("poison job attempts = %d, want 3 (the default budget)", q.Attempts)
	}
	if !strings.Contains(q.Error, "poison job") || !strings.Contains(q.Error, "injected poison-job crash") {
		t.Errorf("quarantine reason = %q, want the poison verdict with the panic value", q.Error)
	}
	if n := reg.Snapshot()["jobs_quarantined"]; n != 1 {
		t.Errorf("jobs_quarantined = %v, want 1", n)
	}

	// Every quarantine carries forensics: the flight recorder dumped a
	// postmortem and quarantine.json marks the verdict durably.
	dir := filepath.Join(ts.StateDir, "jobs", poison.ID)
	for _, f := range []string{"postmortem.json", "quarantine.json"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("poison job left no %s: %v", f, err)
		}
	}
	if _, err := ts.Result(ctx, poison.ID); err == nil {
		t.Error("result of quarantined poison job succeeded, want 409")
	}

	// The sibling job shares the worker the poison job kept crashing —
	// it must still complete normally.
	if fin, err := ts.WaitTerminal(ctx, healthy.ID); err != nil || fin.State != server.StateDone {
		t.Fatalf("healthy sibling ended (%v, %v), want done", fin, err)
	}

	// The verdict is durable: a restarted daemon keeps the job
	// quarantined instead of running the poison again.
	faultinject.Reset()
	ts = ts.Restart(t)
	waitState(ctx, t, ts.Client, poison.ID, server.StateQuarantined)
	if n := reg.Snapshot()["jobs_quarantined"]; n != 1 {
		t.Errorf("jobs_quarantined after restart = %v, want still 1", n)
	}
}

// TestWatchdogCancelsStalledRun pins the stuck-run watchdog: a run
// making no observable progress (its worker is wedged before any
// annealing move) is postmortem-dumped and canceled after
// StallTimeout, and the job marked failed with the stall verdict —
// terminal, not requeued.
func TestWatchdogCancelsStalledRun(t *testing.T) {
	ts, reg := chaosServer(t, func(c *server.Config) {
		c.StallTimeout = 200 * time.Millisecond
		c.WatchdogEvery = 25 * time.Millisecond
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Wedge the worker at run start until released; the run context it
	// would use is already canceled by then.
	release := make(chan struct{})
	faultinject.SetPath(func(p faultinject.Point, _ string, _ int) error {
		if p == faultinject.JobRun {
			<-release
		}
		return nil
	})
	defer faultinject.Reset()
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()

	st, err := ts.Submit(ctx, tinyRequest(71))
	if err != nil {
		t.Fatal(err)
	}
	// The watchdog fires while the worker is still wedged.
	deadline := time.Now().Add(10 * time.Second)
	for reg.Snapshot()["watchdog_cancels"] < 1 {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never canceled the wedged run")
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(release)

	fin := waitState(ctx, t, ts.Client, st.ID, server.StateFailed)
	if !strings.Contains(fin.Error, "watchdog") || !strings.Contains(fin.Error, "no observable progress") {
		t.Errorf("stalled job error = %q, want the watchdog verdict", fin.Error)
	}
	if n := reg.Snapshot()["watchdog_cancels"]; n != 1 {
		t.Errorf("watchdog_cancels = %v, want 1", n)
	}
	// The stall left forensics behind.
	if _, err := os.Stat(filepath.Join(ts.StateDir, "jobs", st.ID, "postmortem.json")); err != nil {
		t.Errorf("stalled job left no postmortem: %v", err)
	}
}

// TestDegradedModeServesAndHeals is the end-to-end degraded-operation
// drill: with the disk gone the service keeps accepting and completing
// jobs from memory and reports itself degraded; when the disk returns
// it heals, flushes every held record durably, and a restart then
// serves bits identical to a direct run — nothing accepted during the
// outage is lost.
func TestDegradedModeServesAndHeals(t *testing.T) {
	ts, reg := chaosServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	faultinject.SetPath(func(p faultinject.Point, path string, _ int) error {
		if p == faultinject.FSWrite && strings.HasPrefix(path, ts.StateDir) {
			return errors.New("injected EIO")
		}
		return nil
	})
	defer faultinject.Reset()

	st, err := ts.Submit(ctx, testRequest("apte", 81))
	if err != nil {
		t.Fatalf("submit while disk is failing: %v", err)
	}
	if fin, err := ts.WaitTerminal(ctx, st.ID); err != nil || fin.State != server.StateDone {
		t.Fatalf("degraded job ended (%v, %v), want done", fin, err)
	}
	want := directReference(t, "apte", 81)
	got, err := ts.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("result served from memory: %v", err)
	}
	assertResultMatchesDirect(t, got, want)

	snap := reg.Snapshot()
	if snap["store_degraded"] != 1 {
		t.Errorf("store_degraded = %v, want 1", snap["store_degraded"])
	}
	if snap["store_write_retries"] == 0 {
		t.Error("store_write_retries = 0, want bounded retries before degrading")
	}
	if snap["jobs_quarantined"] != 0 {
		t.Errorf("jobs_quarantined = %v during a pure write outage, want 0", snap["jobs_quarantined"])
	}

	// Disk returns: probe heals, flush writes the held records.
	faultinject.Reset()
	waitMetric(t, reg, "store_degraded", 0, 5*time.Second)

	// The flushed records verify on disk as proper envelopes.
	dir := filepath.Join(ts.StateDir, "jobs", st.ID)
	var anyDoc struct{}
	if err := ckpt.LoadAs(filepath.Join(dir, "job.json"), "irgrid-job", 1, &anyDoc); err != nil {
		t.Errorf("flushed job.json does not verify: %v", err)
	}
	if err := ckpt.LoadAs(filepath.Join(dir, "result.json"), "irgrid-job-result", 1, &anyDoc); err != nil {
		t.Errorf("flushed result.json does not verify: %v", err)
	}

	// And a restarted daemon serves the identical bits from them.
	ts = ts.Restart(t)
	waitState(ctx, t, ts.Client, st.ID, server.StateDone)
	got, err = ts.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("result after heal+restart: %v", err)
	}
	assertResultMatchesDirect(t, got, want)
}
