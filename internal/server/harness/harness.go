// Package harness is the end-to-end test rig for the floorplanning
// service: an httptest-backed server factory with a temporary
// checkpoint directory, a typed API client, and poll-until-terminal
// helpers. Every server test drives the real HTTP surface through it,
// and cmd/floorpland's child-process tests reuse the client against a
// real daemon.
package harness

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"irgrid/internal/server"
	"irgrid/telemetry"
)

// TestServer is an in-process service instance bound to an
// httptest.Server, with its state directory on the test's temp dir so
// checkpoints and job records vanish with the test.
type TestServer struct {
	*Client
	Server   *server.Server
	HTTP     *httptest.Server
	StateDir string
}

// StartTestServer boots a service on a fresh temp state directory and
// registers cleanup (graceful shutdown, then HTTP close). Mutate the
// returned config via opts before boot.
func StartTestServer(t testing.TB, opts ...func(*server.Config)) *TestServer {
	t.Helper()
	cfg := server.Config{
		StateDir:        t.TempDir(),
		Workers:         1,
		QueueDepth:      16,
		CheckpointEvery: 1,
		Logf:            t.Logf,
	}
	for _, o := range opts {
		o(&cfg)
	}
	return startOn(t, cfg)
}

// Restart shuts the current instance down gracefully and boots a new
// one over the same state directory — the in-process analogue of a
// daemon restart, proving drain/recover round trips.
func (ts *TestServer) Restart(t testing.TB) *TestServer {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := ts.Server.Shutdown(ctx); err != nil {
		t.Fatalf("harness: shutdown before restart: %v", err)
	}
	ts.HTTP.Close()
	cfg := ts.Server.Config()
	return startOn(t, cfg)
}

func startOn(t testing.TB, cfg server.Config) *TestServer {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatalf("harness: starting server: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	ts := &TestServer{
		Client:   NewClient(hs.URL),
		Server:   s,
		HTTP:     hs,
		StateDir: cfg.StateDir,
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		hs.Close()
	})
	return ts
}

// Client is a typed client of the job API. Non-2xx responses decode
// into *server.Error (with RetryAfterSeconds filled from the
// Retry-After header), so tests assert on codes, not substrings.
type Client struct {
	BaseURL string
	// ClientID, when set, is sent as X-Client-ID — the rate-limit
	// identity.
	ClientID string
	HTTP     *http.Client
	// Retry, when set, makes the client retry 429 responses (rate
	// limit, full queue) honoring Retry-After. Nil disables retries:
	// every 429 surfaces to the caller.
	Retry *RetryPolicy
}

// RetryPolicy bounds the client's 429 retry loop. Each wait honors the
// server's Retry-After when present, else backs off exponentially from
// BaseDelay; both get ±50% jitter so a herd of clients decorrelates.
// The whole budget is context-bounded: ctx expiry ends the loop with
// ctx.Err() no matter how many attempts remain.
type RetryPolicy struct {
	// MaxAttempts caps total request attempts (default 5).
	MaxAttempts int
	// BaseDelay seeds the backoff when the server sent no Retry-After
	// (default 50ms); it doubles per attempt up to MaxDelay (default 2s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

func (p *RetryPolicy) fill() RetryPolicy {
	out := *p
	if out.MaxAttempts <= 0 {
		out.MaxAttempts = 5
	}
	if out.BaseDelay <= 0 {
		out.BaseDelay = 50 * time.Millisecond
	}
	if out.MaxDelay <= 0 {
		out.MaxDelay = 2 * time.Second
	}
	return out
}

// NewClient returns a client of the service at baseURL (no trailing
// slash required).
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL: strings.TrimRight(baseURL, "/"),
		HTTP:    &http.Client{Timeout: 2 * time.Minute},
	}
}

// do issues a request, retrying 429s per the client's RetryPolicy.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	if c.Retry == nil {
		return c.doOnce(ctx, method, path, body, out)
	}
	pol := c.Retry.fill()
	delay := pol.BaseDelay
	for attempt := 1; ; attempt++ {
		err := c.doOnce(ctx, method, path, body, out)
		apiErr, ok := err.(*server.Error)
		if !ok || apiErr.Status != http.StatusTooManyRequests || attempt >= pol.MaxAttempts {
			return err
		}
		wait := delay
		if apiErr.RetryAfterSeconds > 0 {
			wait = time.Duration(apiErr.RetryAfterSeconds) * time.Second
		}
		if wait > pol.MaxDelay {
			wait = pol.MaxDelay
		}
		// ±50% jitter.
		wait = wait/2 + time.Duration(rand.Int63n(int64(wait)+1))
		select {
		case <-ctx.Done():
			return fmt.Errorf("harness: retry budget cut short by context: %w (last: %v)", ctx.Err(), err)
		case <-time.After(wait):
		}
		delay *= 2
	}
}

// doOnce issues one request and decodes the response: into out on 2xx,
// into *server.Error otherwise.
func (c *Client) doOnce(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.ClientID != "" {
		req.Header.Set("X-Client-ID", c.ClientID)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		var env struct {
			Error *server.Error `json:"error"`
		}
		if jerr := json.Unmarshal(raw, &env); jerr != nil || env.Error == nil {
			return fmt.Errorf("harness: %s %s: status %d, undecodable body %q", method, path, resp.StatusCode, raw)
		}
		env.Error.Status = resp.StatusCode
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, aerr := strconv.Atoi(ra); aerr == nil {
				env.Error.RetryAfterSeconds = secs
			}
		}
		return env.Error
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// Submit posts a job and returns its accepted status document.
func (c *Client) Submit(ctx context.Context, req *server.JobRequest) (*server.JobStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	return c.SubmitRaw(ctx, body)
}

// SubmitRaw posts a raw submission body (malformed-input tests).
func (c *Client) SubmitRaw(ctx context.Context, body []byte) (*server.JobStatus, error) {
	var st server.JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", body, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Status fetches a job's status document.
func (c *Client) Status(ctx context.Context, id string) (*server.JobStatus, error) {
	var st server.JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// List fetches every job's status, newest first.
func (c *Client) List(ctx context.Context) ([]*server.JobStatus, error) {
	var doc struct {
		Jobs []*server.JobStatus `json:"jobs"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &doc); err != nil {
		return nil, err
	}
	return doc.Jobs, nil
}

// Result fetches a done job's result document.
func (c *Client) Result(ctx context.Context, id string) (*server.JobResult, error) {
	var res server.JobResult
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Cancel requests cancellation and returns the job's status at that
// instant (a queued job is already canceled; a running one winds down
// at its next annealing move).
func (c *Client) Cancel(ctx context.Context, id string) (*server.JobStatus, error) {
	var st server.JobStatus
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Events fetches the job's trace events decoded into the telemetry
// union type; follow tails until the job is terminal.
func (c *Client) Events(ctx context.Context, id string, follow bool) ([]telemetry.TraceRecord, error) {
	path := "/v1/jobs/" + id + "/events"
	if follow {
		path += "?follow=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	if c.ClientID != "" {
		req.Header.Set("X-Client-ID", c.ClientID)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("harness: events status %d: %s", resp.StatusCode, raw)
	}
	var out []telemetry.TraceRecord
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		// The response body is already bound to ctx via the request,
		// but a follow stream can idle between lines; bail promptly.
		if err := ctx.Err(); err != nil {
			return out, err
		}
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec telemetry.TraceRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("harness: undecodable trace line %q: %v", line, err)
		}
		out = append(out, rec)
	}
	return out, sc.Err()
}

// WaitTerminal polls a job until it reaches a terminal state (done,
// failed, canceled or quarantined), the poll predicate below it, or
// ctx expires.
func (c *Client) WaitTerminal(ctx context.Context, id string) (*server.JobStatus, error) {
	return c.WaitStatus(ctx, id, func(st *server.JobStatus) bool {
		return st.State == server.StateDone || st.State == server.StateFailed ||
			st.State == server.StateCanceled || st.State == server.StateQuarantined
	})
}

// WaitStatus polls a job until pred accepts its status or ctx
// expires.
func (c *Client) WaitStatus(ctx context.Context, id string, pred func(*server.JobStatus) bool) (*server.JobStatus, error) {
	for {
		st, err := c.Status(ctx, id)
		if err == nil && pred(st) {
			return st, nil
		}
		if err != nil {
			// Keep polling through transient transport errors, but a
			// typed API error (404, …) is conclusive.
			if apiErr, ok := err.(*server.Error); ok {
				return nil, apiErr
			}
		}
		select {
		case <-ctx.Done():
			if err == nil {
				err = fmt.Errorf("job %s not terminal before deadline (last state %s)", id, "unknown")
			}
			return nil, fmt.Errorf("harness: waiting on job %s: %w (last error: %v)", id, ctx.Err(), err)
		case <-time.After(20 * time.Millisecond):
		}
	}
}
