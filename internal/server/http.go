package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"irgrid/internal/buildinfo"
	"irgrid/telemetry"
)

// buildHandler assembles the API mux:
//
//	POST   /v1/jobs              submit a job (202 + status doc)
//	GET    /v1/jobs              list jobs, newest first
//	GET    /v1/jobs/{id}         job status
//	DELETE /v1/jobs/{id}         cancel (frees a queued job's slot)
//	GET    /v1/jobs/{id}/result  terminal result document
//	GET    /v1/jobs/{id}/events  the job's JSONL run trace (?follow=1 tails)
//	GET    /healthz              liveness: 200 while the process serves, with a service summary
//	GET    /readyz               readiness: 503 while draining or degraded
//	GET    /debug/run            service health + live per-job run status
//	/metrics, /debug/pprof/      the telemetry hub
//
// Liveness and readiness split deliberately: /healthz answers "is the
// process alive" (always 200, body carries the degraded detail — a
// daemon with a failing disk must NOT be restarted, its in-memory jobs
// are the only copy), while /readyz answers "should new traffic come
// here" (503 while draining or degraded, so load balancers steer
// submissions to healthy replicas).
//
// Every non-2xx response is the JSON error envelope; only job
// submission is rate limited (polling is cheap and harness-driven).
func (s *Server) buildHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.instrument(s.handleJobs))
	mux.HandleFunc("/v1/jobs/", s.instrument(s.handleJob))
	mux.HandleFunc("/healthz", s.instrument(s.handleHealth))
	mux.HandleFunc("/readyz", s.instrument(s.handleReady))
	hub := telemetry.Hub{Reg: s.reg}.Handler()
	mux.Handle("/metrics", hub)
	mux.Handle("/debug/", hub)
	// Longest-pattern-wins: the server's multi-job run view overrides
	// the hub's single-run /debug/run.
	mux.HandleFunc("/debug/run", s.instrument(s.handleDebugRun))
	return mux
}

// healthDoc is the GET /healthz body: liveness plus the service
// summary operators page on.
type healthDoc struct {
	Status  string `json:"status"` // always "ok": the process is alive and serving
	Version string `json:"version"`
	// Durable is false while the store is degraded: the disk is
	// rejecting writes, jobs run from memory, and the daemon re-probes
	// until it heals. DegradedReason/DegradedSinceUnixNs carry the
	// first failure.
	Durable             bool   `json:"durable"`
	DegradedReason      string `json:"degraded_reason,omitempty"`
	DegradedSinceUnixNs int64  `json:"degraded_since_unix_ns,omitempty"`
	Draining            bool   `json:"draining"`
	QueueDepth          int    `json:"queue_depth"`
	JobsRunning         int    `json:"jobs_running"`
	JobsQuarantined     int    `json:"jobs_quarantined"`
	JobsTotal           int    `json:"jobs_total"`
}

func (s *Server) healthDoc() healthDoc {
	down, reason, since := s.store.state()
	s.mu.Lock()
	doc := healthDoc{
		Status:              "ok",
		Version:             buildinfo.Version(),
		Durable:             !down,
		DegradedReason:      reason,
		DegradedSinceUnixNs: since,
		Draining:            s.draining,
		QueueDepth:          len(s.queue),
		JobsTotal:           len(s.jobs),
	}
	for _, j := range s.jobs {
		j.mu.Lock()
		switch j.state {
		case StateRunning:
			doc.JobsRunning++
		case StateQuarantined:
			doc.JobsQuarantined++
		default:
			// Queued and the other terminal states are visible through
			// len(jobs)/queue_depth; only the two special populations
			// get their own counters.
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	return doc
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.healthDoc())
}

// readyDoc is the GET /readyz body.
type readyDoc struct {
	Ready  bool   `json:"ready"`
	Reason string `json:"reason,omitempty"`
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	doc := s.healthDoc()
	switch {
	case doc.Draining:
		writeJSON(w, http.StatusServiceUnavailable, readyDoc{Reason: "draining"})
	case !doc.Durable:
		writeJSON(w, http.StatusServiceUnavailable,
			readyDoc{Reason: "store degraded: " + doc.DegradedReason})
	default:
		writeJSON(w, http.StatusOK, readyDoc{Ready: true})
	}
}

// runsDebugDoc is the GET /debug/run body: the health summary, the
// robustness counters, and one live status block per running job
// (replacing the hub's single-run view — a server runs many).
type runsDebugDoc struct {
	Server   healthDoc          `json:"server"`
	Counters map[string]float64 `json:"counters"`
	Runs     []runDebug         `json:"runs"`
}

type runDebug struct {
	ID             string                   `json:"id"`
	Attempts       int                      `json:"attempts"`
	CheckpointStep int                      `json:"checkpoint_step,omitempty"`
	RecorderSeq    int64                    `json:"recorder_seq"`
	Status         telemetry.StatusSnapshot `json:"status"`
}

func (s *Server) handleDebugRun(w http.ResponseWriter, _ *http.Request) {
	doc := runsDebugDoc{
		Server:   s.healthDoc(),
		Counters: map[string]float64{},
		Runs:     []runDebug{},
	}
	snap := s.reg.Snapshot()
	for _, k := range []string{"store_write_retries", "store_degraded", "jobs_quarantined", "watchdog_cancels"} {
		doc.Counters[k] = snap[k]
	}
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].id < jobs[b].id })
	for _, j := range jobs {
		j.mu.Lock()
		running := j.state == StateRunning
		rec, live := j.rec, j.live
		attempts, step := j.attempts, j.ckptStep
		j.mu.Unlock()
		if !running || live == nil {
			continue
		}
		rd := runDebug{ID: j.id, Attempts: attempts, CheckpointStep: step, Status: live.Snapshot()}
		if rec != nil {
			rd.RecorderSeq = rec.Seq()
		}
		doc.Runs = append(doc.Runs, rd)
	}
	writeJSON(w, http.StatusOK, doc)
}

// instrument counts requests.
func (s *Server) instrument(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.mRequests.Inc()
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

func writeError(w http.ResponseWriter, e *Error) {
	writeJSON(w, e.Status, errorEnvelope{Error: e})
}

func methodNotAllowed(w http.ResponseWriter, allow ...string) {
	w.Header().Set("Allow", strings.Join(allow, ", "))
	writeError(w, &Error{Status: http.StatusMethodNotAllowed, Code: CodeMethodNotAllowed,
		Message: fmt.Sprintf("allowed methods: %s", strings.Join(allow, ", "))})
}

// handleJobs serves the collection: POST submits, GET lists.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleSubmit(w, r)
	case http.MethodGet:
		writeJSON(w, http.StatusOK, map[string]any{"jobs": s.listJobs()})
	default:
		methodNotAllowed(w, http.MethodPost, http.MethodGet)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if ok, retry := s.limiter.allow(clientKey(r), time.Now()); !ok {
		s.mRateLimited.Inc()
		secs := int(retry/time.Second) + 1
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		writeError(w, &Error{Status: http.StatusTooManyRequests, Code: CodeRateLimited,
			Message: fmt.Sprintf("client submission rate exceeded; retry in %ds", secs)})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		// MaxBytesReader's error is the only way ReadAll fails here
		// short of a client disconnect; both are client errors.
		writeError(w, &Error{Status: http.StatusBadRequest, Code: CodeTooLarge,
			Message: fmt.Sprintf("reading request body (cap %d bytes): %v", s.cfg.MaxBodyBytes, err)})
		return
	}
	st, apiErr := s.submit(body)
	if apiErr != nil {
		if apiErr.Code == CodeQueueFull {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, apiErr)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

// handleJob routes /v1/jobs/{id}[/result|/events].
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" {
		writeError(w, &Error{Status: http.StatusNotFound, Code: CodeNotFound, Message: "missing job id"})
		return
	}
	switch sub {
	case "":
		switch r.Method {
		case http.MethodGet:
			s.handleStatus(w, id)
		case http.MethodDelete:
			s.handleCancel(w, id)
		default:
			methodNotAllowed(w, http.MethodGet, http.MethodDelete)
		}
	case "result":
		if r.Method != http.MethodGet {
			methodNotAllowed(w, http.MethodGet)
			return
		}
		s.handleResult(w, id)
	case "events":
		if r.Method != http.MethodGet {
			methodNotAllowed(w, http.MethodGet)
			return
		}
		s.handleEvents(w, r, id)
	default:
		writeError(w, &Error{Status: http.StatusNotFound, Code: CodeNotFound,
			Message: fmt.Sprintf("no resource %q under job %s", sub, id)})
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, id string) {
	j, pos := s.lookup(id)
	if j == nil {
		writeError(w, &Error{Status: http.StatusNotFound, Code: CodeNotFound,
			Message: fmt.Sprintf("no job %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, j.status(pos))
}

func (s *Server) handleCancel(w http.ResponseWriter, id string) {
	st, apiErr := s.cancelJob(id)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, id string) {
	j, _ := s.lookup(id)
	if j == nil {
		writeError(w, &Error{Status: http.StatusNotFound, Code: CodeNotFound,
			Message: fmt.Sprintf("no job %q", id)})
		return
	}
	st := j.status(0)
	switch st.State {
	case StateDone:
		doc, err := s.loadResult(j)
		if err != nil {
			writeError(w, &Error{Status: http.StatusInternalServerError, Code: "internal",
				Message: fmt.Sprintf("loading result: %v", err)})
			return
		}
		writeJSON(w, http.StatusOK, doc)
	case StateFailed:
		writeError(w, &Error{Status: http.StatusConflict, Code: CodeJobFailed,
			Message: fmt.Sprintf("job %s failed: %s", id, st.Error)})
	case StateCanceled:
		writeError(w, &Error{Status: http.StatusConflict, Code: CodeJobCanceled,
			Message: fmt.Sprintf("job %s was canceled", id)})
	case StateQuarantined:
		writeError(w, &Error{Status: http.StatusConflict, Code: CodeJobQuarantined,
			Message: fmt.Sprintf("job %s is quarantined: %s", id, st.Error)})
	default:
		writeError(w, &Error{Status: http.StatusConflict, Code: CodeNotReady,
			Message: fmt.Sprintf("job %s is %s; poll until done", id, st.State)})
	}
}

// handleEvents streams the job's JSONL run trace: the raw bytes the
// run tracer wrote (application/x-ndjson, one event per line). With
// ?follow=1 the response tails the trace — new events appear as the
// annealer flushes them at temperature boundaries — until the job is
// terminal and fully streamed, or the client goes away.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, id string) {
	j, _ := s.lookup(id)
	if j == nil {
		writeError(w, &Error{Status: http.StatusNotFound, Code: CodeNotFound,
			Message: fmt.Sprintf("no job %q", id)})
		return
	}
	follow := r.URL.Query().Get("follow") != ""
	path := filepath.Join(j.dir, "trace.jsonl")
	f, err := os.Open(path)
	if err != nil && !follow {
		// No trace yet (job still queued, or tracing failed): an empty
		// stream, not an error.
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	ctx := r.Context()
	for {
		if f != nil {
			if _, cerr := io.Copy(w, f); cerr != nil {
				f.Close()
				return // client went away
			}
			if flusher != nil {
				flusher.Flush()
			}
		} else if f, err = os.Open(path); err == nil {
			continue // trace appeared; stream from the top
		}
		if !follow {
			break
		}
		// Terminal and drained: one last read raced above, so only
		// stop once a post-terminal copy returned nothing more.
		select {
		case <-j.done:
			if f != nil {
				n, _ := io.Copy(w, f)
				if flusher != nil {
					flusher.Flush()
				}
				if n == 0 {
					f.Close()
					return
				}
				continue
			}
			return
		case <-ctx.Done():
			if f != nil {
				f.Close()
			}
			return
		case <-time.After(100 * time.Millisecond):
		}
	}
	if f != nil {
		f.Close()
	}
}
