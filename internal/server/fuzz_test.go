package server

import (
	"strings"
	"testing"
)

// FuzzJobRequest throws arbitrary bytes at the submission decoder and
// validator: they must never panic, and every rejection must be a
// typed client error (4xx) — malformed JSON, NaN/Inf floats, unknown
// fields, oversized documents and hostile nesting all included.
func FuzzJobRequest(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`null`,
		`[]`,
		`{"benchmark":"apte"}`,
		`{"benchmark":"apte","options":{"seed":7,"moves_per_temp":4,"max_temps":2}}`,
		`{"benchmark":"nope"}`,
		`{"benchmark":"apte","yal":"MODULE x;"}`,
		`{"yal":"MODULE bogus"}`,
		`{"benchmark":"apte","options":{"alpha":-1}}`,
		`{"benchmark":"apte","options":{"alpha":1e999}}`,
		`{"benchmark":"apte","options":{"alpha":NaN}}`,
		`{"benchmark":"apte","options":{"timeout_seconds":-3}}`,
		`{"benchmark":"apte","options":{"representation":"quantum"}}`,
		`{"benchmark":"apte","options":{"model":"telepathy"}}`,
		`{"benchmark":"apte","unknown_field":1}`,
		`{"benchmark":"apte"}{"benchmark":"apte"}`,
		`{"circuit":{"name":"c","modules":[]}}`,
		`{"circuit":{"name":"c","modules":[{"name":"m","w":-5,"h":3}]}}`,
		`{"circuit":{"name":"c","modules":[{"name":"m","w":4,"h":3}],` +
			`"nets":[{"name":"n","pins":[{"module":"ghost"}]}]}}`,
		`{"benchmark":"apte","options":` + strings.Repeat(`{"seed":`, 200) + `1` + strings.Repeat(`}`, 200) + `}`,
		"\x00\xff\xfe",
		`{"benchmark":"` + strings.Repeat("a", 1<<16) + `"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		spec, apiErr := decodeJobRequest(body)
		switch {
		case apiErr != nil:
			if spec != nil {
				t.Fatalf("decode returned both a spec and an error %v", apiErr)
			}
			if apiErr.Status < 400 || apiErr.Status >= 500 {
				t.Fatalf("rejection status %d (%s: %s), want 4xx", apiErr.Status, apiErr.Code, apiErr.Message)
			}
			if apiErr.Code == "" || apiErr.Message == "" {
				t.Fatalf("rejection missing code/message: %+v", apiErr)
			}
		case spec == nil:
			t.Fatal("decode returned neither spec nor error")
		default:
			// Accepted specs must be fully resolved: a runnable circuit
			// and options the engine itself would accept.
			if spec.circuit == nil {
				t.Fatal("accepted spec has no circuit")
			}
			if err := spec.circuit.Validate(); err != nil {
				t.Fatalf("accepted spec fails circuit validation: %v", err)
			}
		}
	})
}
