package server

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"irgrid/internal/ckpt"
	"irgrid/telemetry"
)

// Quarantine-record envelope identifiers (see internal/ckpt).
const (
	quarantineMagic   = "irgrid-quarantine"
	quarantineVersion = 1
)

// quarantineDoc is the quarantine.json payload: why the job was taken
// out of service, plus — for jobs quarantined because their on-disk
// record failed verification — the offending bytes themselves, so an
// operator can inspect the damage without digging through backups.
type quarantineDoc struct {
	ID                string `json:"id"`
	Reason            string `json:"reason"`
	Attempts          int    `json:"attempts,omitempty"`
	QuarantinedUnixNs int64  `json:"quarantined_unix_ns"`
	// OffendingFile/OffendingBytes preserve the record that failed to
	// verify (base64 in JSON). Absent for crash-loop quarantines, whose
	// records are intact.
	OffendingFile  string `json:"offending_file,omitempty"`
	OffendingBytes []byte `json:"offending_bytes,omitempty"`
}

// quarantineJob transitions a live job to the terminal quarantined
// state: the crash-loop killer for jobs that keep panicking and the
// recovery path for jobs whose attempt budget was already spent when
// the daemon restarted. The job record (when the job has one) and the
// quarantine document are both persisted; the flight recorder, when
// armed, dumps a postmortem alongside them.
func (s *Server) quarantineJob(j *job, reason string) {
	j.mu.Lock()
	if terminalState(j.state) {
		j.mu.Unlock()
		return
	}
	j.state = StateQuarantined
	j.outcome = telemetry.OutcomeError
	j.errMsg = reason
	j.finished = time.Now().UnixNano()
	attempts := j.attempts
	rec := j.rec
	close(j.done)
	j.mu.Unlock()

	s.mQuarantined.Inc()
	s.cfg.Logf("server: job %s quarantined: %s", j.id, reason)
	if rec != nil {
		if path, derr := rec.Dump("job_quarantined"); derr == nil && path != "" {
			s.cfg.Logf("server: job %s quarantine postmortem written to %s", j.id, path)
		}
	}
	s.persistJob(j)
	s.persistQuarantine(j, &quarantineDoc{
		ID:                j.id,
		Reason:            reason,
		Attempts:          attempts,
		QuarantinedUnixNs: time.Now().UnixNano(),
	})
}

// quarantineRecovered handles a job directory whose record failed to
// verify during the recovery scan: instead of skipping the directory
// (leaving the job to silently vanish from the API), the scan raises a
// tombstone — a synthetic terminal job carrying the failure reason —
// and preserves the offending bytes in quarantine.json. The corrupt
// job.json itself is left untouched for inspection.
func (s *Server) quarantineRecovered(name, dir string, cause error) {
	offFile := filepath.Join(dir, "job.json")
	off, _ := os.ReadFile(offFile)

	j := newJob(name, dir, nil, time.Now().UnixNano())
	j.state = StateQuarantined
	j.outcome = telemetry.OutcomeError
	j.errMsg = fmt.Sprintf("quarantined at recovery: %v", cause)
	j.finished = j.created
	close(j.done)
	s.jobs[name] = j

	s.mQuarantined.Inc()
	s.cfg.Logf("server: job dir %s quarantined at recovery: %v", name, cause)
	s.persistQuarantine(j, &quarantineDoc{
		ID:                name,
		Reason:            j.errMsg,
		QuarantinedUnixNs: j.finished,
		OffendingFile:     offFile,
		OffendingBytes:    off,
	})
}

// loadQuarantined rebuilds a previously quarantined directory from its
// quarantine.json (nil when none verifies). It keeps an
// already-quarantined job stable across restarts — same state, same
// reason, not re-counted in jobs_quarantined — even when its job.json
// is the corrupt file that caused the quarantine.
func (s *Server) loadQuarantined(name, dir string) *job {
	var doc quarantineDoc
	if err := ckpt.LoadAs(filepath.Join(dir, "quarantine.json"), quarantineMagic, quarantineVersion, &doc); err != nil {
		return nil
	}
	if doc.ID != name {
		return nil
	}
	j := newJob(name, dir, nil, doc.QuarantinedUnixNs)
	j.state = StateQuarantined
	j.outcome = telemetry.OutcomeError
	j.errMsg = doc.Reason
	j.attempts = doc.Attempts
	j.finished = doc.QuarantinedUnixNs
	j.quarDoc = &doc
	close(j.done)
	return j
}

// persistQuarantine writes the quarantine document, holding it in
// memory (for the heal flush) when the store is degraded.
func (s *Server) persistQuarantine(j *job, doc *quarantineDoc) {
	err := s.store.save(filepath.Join(j.dir, "quarantine.json"), quarantineMagic, quarantineVersion, doc)
	j.mu.Lock()
	j.quarDoc = doc
	j.quarDirty = err != nil
	j.mu.Unlock()
	if err != nil {
		s.store.degrade(err)
	}
}
